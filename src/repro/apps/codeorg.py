"""Code.org benchmark: the code.org learning platform (§5.2).

Uses **both** ActiveRecord and Sequel, as the real app does; the paper
type checked all methods that query the database through Sequel.  Contains
the paper's first found bug: ``current_user`` was *documented* as returning
a ``User`` but actually returns a hash — CompRDL reports the mismatch and
the developers fixed the documentation (§5.3, Errors = 1).
"""

from repro.apps.base import SubjectApp
from repro.db.schema import Database

_SOURCE = '''
class User < ActiveRecord::Base
  has_many :sections

  type "(String) -> %bool", typecheck: :codeorg
  def self.username_free?(name)
    !User.exists?({ username: name })
  end

  type "(String) -> User or nil", typecheck: :codeorg
  def self.by_email(address)
    User.find_by({ email: address })
  end

  type "() -> Integer", typecheck: :codeorg
  def self.teacher_count
    User.where({ user_type: "teacher" }).count
  end

  type "() -> Integer", typecheck: :codeorg
  def self.student_count
    User.where({ user_type: "student" }).count
  end

  type "() -> Array<String>", typecheck: :codeorg
  def self.admin_emails
    User.where({ admin: true }).pluck(:email)
  end

  type "() -> Integer", typecheck: :codeorg
  def self.total_lines_written
    User.where({ user_type: "student" }).sum(:total_lines)
  end

  type "() -> %bool", typecheck: :codeorg
  def teacher?
    user_type == "teacher"
  end

  type "() -> %bool", typecheck: :codeorg
  def student?
    user_type == "student"
  end

  type "() -> String", typecheck: :codeorg
  def short_name
    username.split(" ").first
  end
end

class Session
  type :session_data, "() -> { id: Integer, username: String }"
  def session_data
    { id: 1, username: "guest" }
  end

  # BUG (found by CompRDL, confirmed by developers as a documentation
  # error): documented to return a User, actually returns the session hash
  type "() -> User", typecheck: :codeorg
  def current_user
    session_data
  end
end

class Section < ActiveRecord::Base
  type "(String) -> Section or nil", typecheck: :codeorg
  def self.by_code(login_code)
    Section.find_by({ code: login_code })
  end

  type "(Integer) -> Array<String>", typecheck: :codeorg
  def self.names_for_teacher(uid)
    Section.where({ user_id: uid }).pluck(:name)
  end

  type "(Integer) -> Integer", typecheck: :codeorg
  def self.count_for_teacher(uid)
    Section.where({ user_id: uid }).count
  end

  type "() -> %bool", typecheck: :codeorg
  def hidden_section?
    hidden
  end
end

class Stats
  # Sequel dataset queries (the style Code.org uses for reporting)
  type "() -> Integer", typecheck: :codeorg
  def self.user_count
    DB[:users].count
  end

  type "(String) -> Integer", typecheck: :codeorg
  def self.count_by_type(kind)
    DB[:users].where({ user_type: kind }).count
  end

  type "() -> Array<String>", typecheck: :codeorg
  def self.all_usernames
    DB[:users].select_map(:username)
  end

  type "() -> Integer or nil", typecheck: :codeorg
  def self.max_lines
    DB[:users].max(:total_lines)
  end

  type "() -> Integer or nil", typecheck: :codeorg
  def self.min_lines
    DB[:users].min(:total_lines)
  end

  type "() -> Integer", typecheck: :codeorg
  def self.lines_sum
    DB[:users].sum_of(:total_lines)
  end

  type "(Integer) -> Integer", typecheck: :codeorg
  def self.follower_count(section_id)
    DB[:followers].where({ section_id: section_id }).count
  end

  type "(Integer) -> Array<Integer>", typecheck: :codeorg
  def self.student_ids(section_id)
    DB[:followers].where({ section_id: section_id }).select_map(:student_user_id)
  end

  type "() -> Integer", typecheck: :codeorg
  def self.visible_script_count
    DB[:scripts].exclude({ hidden: true }).count
  end

  type "() -> Array<String>", typecheck: :codeorg
  def self.script_names
    DB[:scripts].select_map(:name)
  end

  type "(String) -> { id: Integer, name: String, hidden: %bool } or nil", typecheck: :codeorg
  def self.script_row(script_name)
    DB[:scripts][{ name: script_name }]
  end

  type "(String) -> Integer", typecheck: :codeorg
  def self.register_script(script_name)
    DB[:scripts].insert({ name: script_name, hidden: false })
  end

  type "(Integer) -> Integer", typecheck: :codeorg
  def self.hide_script(sid)
    DB[:scripts].where({ id: sid }).update({ hidden: true })
  end

  type "() -> String or nil", typecheck: :codeorg
  def self.first_script_name
    DB[:scripts].get(:name)
  end
end

class Enrollment
  type "(Integer, Integer) -> Integer", typecheck: :codeorg
  def self.enroll(section_id, student_id)
    DB[:followers].insert({ section_id: section_id, student_user_id: student_id })
  end

  type "(Integer, Integer) -> %bool", typecheck: :codeorg
  def self.enrolled?(section_id, student_id)
    DB[:followers].where({ section_id: section_id, student_user_id: student_id }).count > 0
  end

  type "(Integer) -> Integer", typecheck: :codeorg
  def self.unenroll_all(section_id)
    DB[:followers].where({ section_id: section_id }).delete
  end
end
'''

_TESTS = '''
out = []
out << User.username_free?("newkid")
out << User.by_email("t@school.org")
out << User.teacher_count
out << User.student_count
out << User.admin_emails.length
out << User.total_lines_written
teacher = User.by_email("t@school.org")
out << teacher.teacher?
out << teacher.student?
out << teacher.short_name
out << Section.by_code("ABCD")
out << Section.names_for_teacher(1).length
out << Section.count_for_teacher(1)
out << Stats.user_count
out << Stats.count_by_type("student")
out << Stats.all_usernames.length
out << Stats.max_lines
out << Stats.min_lines
out << Stats.lines_sum
out << Stats.follower_count(1)
out << Stats.student_ids(1).length
out << Stats.visible_script_count
out << Stats.script_names.length
out << Stats.script_row("intro")
out << Stats.register_script("new course")
out << Stats.hide_script(1)
out << Stats.first_script_name
out << Enrollment.enroll(1, 2)
out << Enrollment.enrolled?(1, 2)
out << Enrollment.unenroll_all(1)
out.length
'''


def _setup(db: Database) -> None:
    db.create_table("users", username="string", email="string",
                    user_type="string", admin="boolean",
                    total_lines="integer")
    db.create_table("sections", name="string", code="string",
                    user_id="integer", hidden="boolean")
    db.create_table("followers", section_id="integer",
                    student_user_id="integer")
    db.create_table("scripts", name="string", hidden="boolean")
    db.declare_association("users", "sections")
    db.insert("users", {"username": "Teacher One", "email": "t@school.org",
                        "user_type": "teacher", "admin": False,
                        "total_lines": 0})
    db.insert("users", {"username": "Student A", "email": "a@school.org",
                        "user_type": "student", "admin": False,
                        "total_lines": 120})
    db.insert("users", {"username": "Root", "email": "root@code.org",
                        "user_type": "teacher", "admin": True,
                        "total_lines": 10})
    db.insert("sections", {"name": "Period 1", "code": "ABCD",
                           "user_id": 1, "hidden": False})
    db.insert("followers", {"section_id": 1, "student_user_id": 2})
    db.insert("scripts", {"name": "intro", "hidden": False})
    db.insert("scripts", {"name": "draft", "hidden": True})


CODEORG = SubjectApp(
    name="Code.org",
    label="codeorg",
    source=_SOURCE,
    setup_db=_setup,
    test_suite=_TESTS,
    expected_errors=1,
    paper={"methods": 49, "loc": 530, "casts": 3, "casts_rdl": 68, "errors": 1},
)
