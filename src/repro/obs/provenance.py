"""Per-verdict provenance: why is this verdict what it is, and what changed it?

A comp-type verdict is *derived* — from the schema state, the type-level
evaluations it triggered, and the method's recorded dependency footprint —
and the repo now has four production paths (serial, cold fleet, warm
sessions, on two storage backends) whose parity is asserted but was never
inspectable.  This module records, for every verdict a universe produces:

* **how** it was produced — a fresh in-process evaluation, a cold-fleet
  worker shard, or a warm-session worker (with worker pid, shard index, and
  session id), plus how often the cached verdict was served since;
* **from what** — the dependency footprint (:class:`MethodDeps` tables,
  columns, comp codes) and the schema generation it was checked at;
* **what changed it** — which :class:`SchemaJournal` events dirtied it
  since its last check, and a bounded *flip history*: ``verdict changed at
  generation G; dirtying events: [...]``;
* **at what cost** — comp-cache hits/misses attributed to the check and
  the wall time the span layer measured, on the same ``perf_counter``
  timeline trace events use.

Recording is off by default and guarded by the same one-element-list cell
pattern as tracing (``PROVENANCE`` in :mod:`repro.obs.state`): the comp-eval
microloop is untouched, and the only per-method work in disabled mode is
one flag read returning the shared :data:`NULL_CAPTURE`.  Arm it with
``CompRDL(provenance=True)``, :func:`enable`, or ``REPRO_PROVENANCE`` (an
on/off token, or a path to auto-export JSONL at process exit).

Worker-side provenance piggybacks on protocol replies exactly like spans:
each :class:`MethodVerdict` carries a small ``prov`` tuple when the request
asked for it and ``None`` otherwise — a disabled round adds zero payload.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

from repro.obs.state import PROVENANCE

#: flips retained per method — enough to answer "what changed it lately"
#: without letting a migration-storm benchmark grow history without bound
FLIP_HISTORY_LIMIT = 8

_ENV_VAR = "REPRO_PROVENANCE"
_ENV_OFF = ("", "0", "false", "off")
_ENV_ON = ("1", "true", "on")

#: every ledger that has recorded at least one verdict this process —
#: the ``REPRO_PROVENANCE=path`` atexit export merges them.  Registration
#: is lazy (first record), so disabled runs never touch this list.
_LEDGERS: list["ProvenanceLedger"] = []


# ---------------------------------------------------------------------------
# the switch (mirrors repro.obs.spans)
# ---------------------------------------------------------------------------

def enabled() -> bool:
    """Whether per-verdict provenance recording is on."""
    return PROVENANCE[0]


def enable() -> None:
    PROVENANCE[0] = True


def disable() -> None:
    PROVENANCE[0] = False


def set_enabled(on: bool) -> None:
    PROVENANCE[0] = bool(on)


def env_enabled() -> bool:
    """Whether ``REPRO_PROVENANCE`` asks for recording (workers re-check
    this: spawn children inherit the environment, not the parent's flag)."""
    return os.environ.get(_ENV_VAR, "").lower() not in _ENV_OFF


def env_export_path() -> str | None:
    """The JSONL export path ``REPRO_PROVENANCE`` names, if it names one
    (any value that is not a plain on/off token is treated as a path)."""
    value = os.environ.get(_ENV_VAR, "")
    if value.lower() in _ENV_OFF or value.lower() in _ENV_ON:
        return None
    return value


def reset() -> None:
    """Forget every registered ledger (tests / fresh capture runs).  The
    ledgers themselves live on in their universes; only the process-wide
    export registry is cleared."""
    _LEDGERS.clear()


# ---------------------------------------------------------------------------
# per-check capture: comp-cache attribution without touching the microloop
# ---------------------------------------------------------------------------

class _NullCapture:
    """The disabled fast path: one shared instance, every field zero."""

    __slots__ = ()

    comp_hits = 0
    comp_misses = 0
    wall_s = 0.0

    def __enter__(self) -> "_NullCapture":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_CAPTURE = _NullCapture()


class Capture:
    """Attribute comp-cache traffic (and wall time) to one method check.

    The comp engine's hit path stays untouched: ``IncrementalStats`` counts
    hits/misses unconditionally already, so a per-check *delta* of those
    counters costs four attribute reads at method granularity — far off the
    microloop the perf budget guards.
    """

    __slots__ = ("stats", "comp_hits", "comp_misses", "wall_s",
                 "_hits0", "_misses0", "_start")

    def __init__(self, stats):
        self.stats = stats
        self.comp_hits = 0
        self.comp_misses = 0
        self.wall_s = 0.0

    def __enter__(self) -> "Capture":
        self._hits0 = self.stats.comp_hits
        self._misses0 = self.stats.comp_misses
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_s = time.perf_counter() - self._start
        self.comp_hits = self.stats.comp_hits - self._hits0
        self.comp_misses = self.stats.comp_misses - self._misses0
        return False


def capture(stats):
    """A context manager attributing one check's comp-cache traffic;
    returns the shared no-op :data:`NULL_CAPTURE` while disabled."""
    if not PROVENANCE[0]:
        return NULL_CAPTURE
    return Capture(stats)


# ---------------------------------------------------------------------------
# the ledger
# ---------------------------------------------------------------------------

@dataclass
class VerdictRecord:
    """One verdict's provenance entry (the latest production of a method)."""

    desc: str
    producer: dict                    # kind / pid / shard / session
    generation: int                   # schema generation it was checked at
    errors: tuple[str, ...] = ()
    tables: tuple[str, ...] = ()
    columns: tuple[str, ...] = ()     # "table.column", sorted
    comps: tuple[str, ...] = ()       # comp codes, sorted
    comp_hits: int = 0
    comp_misses: int = 0
    wall_s: float = 0.0
    ts: float = 0.0                   # perf_counter µs — the trace timeline
    serves: int = 0                   # cached-verdict reuses since production


def _verdict_word(errors) -> str:
    if not errors:
        return "PASS"
    return f"{len(errors)} error" + ("s" if len(errors) != 1 else "")


def dirtying_events(journal, generation: int, tables) -> list:
    """Journal events after ``generation`` that touch ``tables`` — exactly
    the events that dirty (or would dirty) a verdict with that footprint.
    Mirrors the scheduler's dirty marking: two-table kinds touch their
    ``detail`` partner, and a wildcard footprint is touched by everything.
    """
    # lazy: a top-level import of repro.incremental here would close an
    # import cycle through the scheduler (which imports this module)
    from repro.incremental.versioning import TWO_TABLE_KINDS, WILDCARD

    if journal is None:
        return []
    wildcard = WILDCARD in tables
    table_set = set(tables)
    touched = []
    for event in journal.events_since(generation):
        changed = {event.table}
        if event.detail and event.kind in TWO_TABLE_KINDS:
            changed.add(event.detail)
        if wildcard or changed & table_set:
            touched.append(event)
    return touched


class ProvenanceLedger:
    """Per-universe verdict provenance: latest records plus flip history.

    Owned by the :class:`IncrementalScheduler`; every production path
    funnels through it — ``_check`` for fresh in-process verdicts,
    ``feed_incremental`` for fleet/warm adoptions — so one ledger answers
    for a universe no matter which path produced which verdict.
    """

    def __init__(self, stats=None):
        self.records: dict[object, VerdictRecord] = {}
        self.flips: dict[object, list[dict]] = {}
        self.stats = stats
        self._registered = False

    def __len__(self) -> int:
        return len(self.records)

    def record(self, key, desc: str, errors, generation: int, deps=None,
               producer: dict | None = None, comp_hits: int = 0,
               comp_misses: int = 0, wall_s: float = 0.0,
               journal=None) -> VerdictRecord:
        """Install the provenance entry for one (re)produced verdict.

        A changed error tuple against the previous record appends a flip
        entry — including the journal events that dirtied the old verdict,
        computed against the *previous* record's footprint (what the old
        verdict depended on is what a migration could have flipped).
        """
        errors_t = tuple(str(error) for error in errors)
        previous = self.records.get(key)
        if previous is not None and previous.errors != errors_t:
            events = dirtying_events(journal, previous.generation,
                                     previous.tables)
            flips = self.flips.setdefault(key, [])
            flips.append({
                "generation": generation,
                "from": _verdict_word(previous.errors),
                "to": _verdict_word(errors_t),
                "events": [event.describe() for event in events],
            })
            del flips[:-FLIP_HISTORY_LIMIT]
            if self.stats is not None:
                extra = self.stats.extra
                extra["verdict_flips"] = extra.get("verdict_flips", 0) + 1
        entry = VerdictRecord(
            desc=desc,
            producer=dict(producer) if producer else {"kind": "fresh"},
            generation=generation,
            errors=errors_t,
            ts=time.perf_counter() * 1e6,
            comp_hits=comp_hits,
            comp_misses=comp_misses,
            wall_s=wall_s,
        )
        if deps is not None:
            footprint = deps.summary()
            entry.tables = tuple(footprint["tables"])
            entry.columns = tuple(footprint["columns"])
            entry.comps = tuple(footprint["comps"])
        self.records[key] = entry
        if not self._registered:
            self._registered = True
            _LEDGERS.append(self)
        return entry

    def note_serve(self, key) -> None:
        """A clean cached verdict was served without re-checking."""
        entry = self.records.get(key)
        if entry is not None:
            entry.serves += 1

    # ------------------------------------------------------------------
    def export_records(self) -> list[dict]:
        """Every record (plus its flips) as JSONL-ready dicts, ordered by
        production timestamp — the same µs timeline the trace uses."""
        rows = []
        for key, entry in self.records.items():
            rows.append({
                "type": "verdict",
                "method": entry.desc,
                "verdict": {"ok": not entry.errors,
                            "errors": list(entry.errors)},
                "producer": dict(entry.producer),
                "generation": entry.generation,
                "dependencies": {"tables": list(entry.tables),
                                 "columns": list(entry.columns),
                                 "comps": list(entry.comps)},
                "comp_cache": {"hits": entry.comp_hits,
                               "misses": entry.comp_misses},
                "timing": {"wall_ms": round(entry.wall_s * 1e3, 3),
                           "ts_us": round(entry.ts, 1)},
                "cache_serves": entry.serves,
                "flips": [dict(flip) for flip in self.flips.get(key, [])],
            })
        rows.sort(key=lambda row: row["timing"]["ts_us"])
        return rows


# ---------------------------------------------------------------------------
# explain: the structured answer, plus a rendered tree
# ---------------------------------------------------------------------------

def explain(scheduler, class_name: str, method_name: str,
            static: bool = False) -> dict:
    """Why is this method's verdict what it is, and what changed it?

    Reads the scheduler's ledger plus its *live* state (dirty set, current
    generation, journal), so the answer distinguishes "checked and still
    valid" from "stale: these events dirtied it since generation N".
    """
    from repro.typecheck.registry import MethodKey

    key = MethodKey(class_name, method_name, static)
    desc = str(key)
    db = scheduler.db
    current = getattr(db, "version", 0) if db is not None else 0
    entry = scheduler.provenance.records.get(key)
    if entry is None:
        if key in scheduler.results:
            reason = ("verdict exists but no provenance was recorded — "
                      "enable it (CompRDL(provenance=True), "
                      "obs.provenance.enable(), or REPRO_PROVENANCE=1) "
                      "before checking")
        else:
            reason = "method has never been checked in this universe"
        return {"method": desc, "known": False, "reason": reason,
                "generation": {"current": current}}
    journal = getattr(db, "journal", None) if db is not None else None
    stale = key in scheduler.dirty
    dirtied = [event.describe() for event in
               dirtying_events(journal, entry.generation, entry.tables)]
    return {
        "method": desc,
        "known": True,
        "verdict": {"ok": not entry.errors, "errors": list(entry.errors)},
        "producer": dict(entry.producer),
        "generation": {"checked_at": entry.generation, "current": current,
                       "stale": stale},
        "dependencies": {"tables": list(entry.tables),
                         "columns": list(entry.columns),
                         "comps": list(entry.comps)},
        "comp_cache": {"hits": entry.comp_hits, "misses": entry.comp_misses},
        "timing": {"wall_ms": round(entry.wall_s * 1e3, 3),
                   "ts_us": round(entry.ts, 1)},
        "cache_serves": entry.serves,
        "dirtied_by": dirtied,
        "flips": [dict(flip) for flip in
                  scheduler.provenance.flips.get(key, [])],
    }


def parity_view(info: dict) -> dict:
    """The production-path-independent subset of an :func:`explain` dict.

    Who produced a verdict (pid, shard, session), how warm its comp cache
    happened to be, and how long it took are legitimately different across
    serial / cold-fleet / warm-session runs; everything *about the verdict
    itself* — errors, footprint, generation, staleness, flip structure —
    must be identical, and the parity tests compare exactly this view.
    """
    if not info.get("known"):
        return {"method": info["method"], "known": False}
    return {
        "method": info["method"],
        "verdict": info["verdict"],
        "generation": info["generation"],
        "dependencies": info["dependencies"],
        "dirtied_by": info["dirtied_by"],
        "flips": info["flips"],
    }


def render_explain(info: dict) -> str:
    """An :func:`explain` dict as a human-readable tree."""
    lines = [f"verdict provenance — {info['method']}"]
    if not info.get("known"):
        lines.append(f"└─ unknown: {info['reason']}")
        return "\n".join(lines)
    verdict = info["verdict"]
    producer = info["producer"]
    generation = info["generation"]
    deps = info["dependencies"]

    produced = {"fresh": "fresh in-process eval",
                "fleet": "cold-fleet worker",
                "warm": "warm-session worker"}.get(
                    producer.get("kind"), producer.get("kind", "?"))
    where = [f"pid {producer['pid']}"] if "pid" in producer else []
    if "shard" in producer:
        where.append(f"shard {producer['shard']}")
    if "session" in producer:
        where.append(f"session {producer['session']}")
    suffix = f" ({', '.join(where)})" if where else ""

    lines.append(f"├─ verdict: {_verdict_word(verdict['errors'])}")
    for error in verdict["errors"]:
        lines.append(f"│    {error}")
    lines.append(f"├─ produced by: {produced}{suffix} "
                 f"at schema generation {generation['checked_at']}")
    lines.append(f"├─ timing: {info['timing']['wall_ms']:.2f} ms wall; "
                 f"comp cache {info['comp_cache']['hits']} hits / "
                 f"{info['comp_cache']['misses']} misses")
    lines.append("├─ dependency footprint")
    lines.append(f"│  ├─ tables: {', '.join(deps['tables']) or '(none)'}")
    lines.append(f"│  ├─ columns: {', '.join(deps['columns']) or '(none)'}")
    lines.append(f"│  └─ comp codes: {len(deps['comps'])}")
    state = "STALE" if generation["stale"] else "valid"
    lines.append(f"├─ schema: checked at generation "
                 f"{generation['checked_at']}, now {generation['current']} "
                 f"— {state}")
    for event in info["dirtied_by"]:
        lines.append(f"│    dirtied by {event}")
    lines.append(f"├─ served from verdict cache {info['cache_serves']}× "
                 f"since production")
    flips = info["flips"]
    if not flips:
        lines.append("└─ flips: none recorded")
    else:
        lines.append(f"└─ flips: {len(flips)} recorded")
        for index, flip in enumerate(flips):
            branch = "└─" if index == len(flips) - 1 else "├─"
            lines.append(f"   {branch} at generation {flip['generation']}: "
                         f"{flip['from']} → {flip['to']}")
            for event in flip["events"]:
                lines.append(f"        after {event}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# JSONL export (shares the trace timeline)
# ---------------------------------------------------------------------------

def export_jsonl(path: str, ledgers=None) -> str:
    """Write provenance records as JSON Lines — one verdict per line,
    ordered by production timestamp (``timing.ts_us`` is the same
    ``perf_counter`` µs timeline the Chrome trace uses, so the two exports
    line up event-for-event).  ``ledgers`` defaults to every ledger that
    recorded anything in this process; returns ``path``.
    """
    from repro.obs.export import open_export

    if ledgers is None:
        ledgers = list(_LEDGERS)
    rows = [row for ledger in ledgers for row in ledger.export_records()]
    rows.sort(key=lambda row: row["timing"]["ts_us"])
    with open_export(path) as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True))
            handle.write("\n")
    return path


def recorded() -> int:
    """Total verdict records across every registered ledger."""
    return sum(len(ledger) for ledger in _LEDGERS)
