"""The mini-Ruby object model.

Immediates map to Python values (``nil``→``None``, booleans, ``Integer``→
``int``, ``Float``→``float``, ``Symbol``→:class:`repro.rtypes.kinds.Sym`).
Strings get a mutable wrapper (:class:`RString`) because Ruby strings are
mutable — which is exactly why the paper needs *const string* types.
Arrays, hashes, user objects, classes, blocks and exceptions each have a
small wrapper class.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.rtypes.kinds import Sym


class RString:
    """A mutable Ruby string."""

    __slots__ = ("val", "frozen")

    def __init__(self, val: str = "", frozen: bool = False):
        self.val = val
        self.frozen = frozen

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RString({self.val!r})"


class RArray:
    """A Ruby array wrapping a Python list of runtime values."""

    __slots__ = ("items",)

    def __init__(self, items: Optional[Iterable[object]] = None):
        self.items = list(items) if items is not None else []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RArray({self.items!r})"


def hash_key(value: object) -> object:
    """A hashable, value-equal key for a runtime value used as a hash key."""
    if value is None:
        return ("nil",)
    if value is True or value is False:
        return ("bool", value)
    if isinstance(value, int):
        return ("int", value)
    if isinstance(value, float):
        return ("float", value)
    if isinstance(value, Sym):
        return ("sym", value.name)
    if isinstance(value, RString):
        return ("str", value.val)
    if isinstance(value, RClass):
        return ("class", value.name)
    if isinstance(value, RArray):
        return ("array", tuple(hash_key(v) for v in value.items))
    raise TypeError(f"unhashable hash key: {value!r}")


class RHash:
    """A Ruby hash: insertion-ordered, keyed by value equality."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        # normalized key -> (original key object, value)
        self.entries: dict[object, tuple[object, object]] = {}

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[object, object]]) -> "RHash":
        h = cls()
        for key, value in pairs:
            h.set(key, value)
        return h

    def get(self, key: object, default: object = None) -> object:
        entry = self.entries.get(hash_key(key))
        return entry[1] if entry is not None else default

    def has_key(self, key: object) -> bool:
        return hash_key(key) in self.entries

    def set(self, key: object, value: object) -> None:
        self.entries[hash_key(key)] = (key, value)

    def delete(self, key: object) -> object:
        entry = self.entries.pop(hash_key(key), None)
        return entry[1] if entry is not None else None

    def keys(self) -> list[object]:
        return [k for k, _ in self.entries.values()]

    def values(self) -> list[object]:
        return [v for _, v in self.entries.values()]

    def pairs(self) -> list[tuple[object, object]]:
        return list(self.entries.values())

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RHash({self.pairs()!r})"


class RMethod:
    """A method entry: either user-defined (AST) or native (Python).

    ``code`` caches the closure-compiled form of a user-defined body
    (a :class:`repro.runtime.compile.CompiledMethod`); it is filled lazily
    the first time the compiled backend invokes the method.  ``wref`` is a
    reusable weak reference handed to the compiled backend's call-site
    caches — those live on process-shared AST nodes, and a strong method
    reference there would pin a discarded universe's whole class graph
    through ``owner``.
    """

    __slots__ = ("name", "params", "body", "native", "owner", "code",
                 "wref", "__weakref__")

    def __init__(
        self,
        name: str,
        params: list | None = None,
        body: list | None = None,
        native: Callable | None = None,
        owner: "RClass | None" = None,
    ):
        self.name = name
        self.params = params or []
        self.body = body or []
        self.native = native
        self.owner = owner
        self.code = None
        self.wref = None

    @property
    def is_native(self) -> bool:
        return self.native is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "native" if self.is_native else "user"
        return f"RMethod({self.name}, {kind})"


# Global method-table epoch: bumped on every (re)definition anywhere, so the
# flattened per-class lookup caches below (and the call-site inline caches in
# the compiled backend) can validate themselves with one integer compare.
# Invalidation is deliberately coarse — definitions happen during program
# load, lookups dominate during checking and running.
_METHOD_EPOCH = [1]


def method_epoch() -> int:
    """The current global method-table generation."""
    return _METHOD_EPOCH[0]


class RClass:
    """A Ruby class: method tables, superclass link, and class-level state.

    Method lookup memoizes the ancestor-chain walk in per-class flattened
    caches (``_icache``/``_scache``), validated against the global method
    epoch — redefining *any* method anywhere drops every cache.
    """

    __slots__ = ("name", "superclass", "imethods", "smethods", "consts",
                 "cvars", "generic_params", "_icache", "_scache", "_epoch")

    def __init__(self, name: str, superclass: "RClass | None" = None):
        self.name = name
        self.superclass = superclass
        self.imethods: dict[str, RMethod] = {}
        self.smethods: dict[str, RMethod] = {}
        self.consts: dict[str, object] = {}
        self.cvars: dict[str, object] = {}
        self.generic_params: list[str] = []
        self._icache: dict[str, RMethod | None] = {}
        self._scache: dict[str, RMethod | None] = {}
        self._epoch = 0

    def ancestors(self) -> list["RClass"]:
        chain: list[RClass] = []
        current: RClass | None = self
        while current is not None:
            chain.append(current)
            current = current.superclass
        return chain

    def _revalidate_caches(self) -> None:
        """Empty both flattened lookup caches if the epoch moved on.

        This is the single definition of the invalidation rule: any method
        (re)definition anywhere bumps the global epoch, and the first lookup
        afterwards drops both caches together.
        """
        if self._epoch != _METHOD_EPOCH[0]:
            self._icache = {}
            self._scache = {}
            self._epoch = _METHOD_EPOCH[0]

    def lookup_instance(self, name: str) -> RMethod | None:
        self._revalidate_caches()
        cache = self._icache
        try:
            return cache[name]
        except KeyError:
            pass
        method: RMethod | None = None
        klass: RClass | None = self
        while klass is not None:
            found = klass.imethods.get(name)
            if found is not None:
                method = found
                break
            klass = klass.superclass
        cache[name] = method
        return method

    def lookup_static(self, name: str) -> RMethod | None:
        self._revalidate_caches()
        cache = self._scache
        try:
            return cache[name]
        except KeyError:
            pass
        method: RMethod | None = None
        klass: RClass | None = self
        while klass is not None:
            found = klass.smethods.get(name)
            if found is not None:
                method = found
                break
            klass = klass.superclass
        cache[name] = method
        return method

    def define(self, name: str, method: RMethod, static: bool = False) -> None:
        method.owner = self
        _METHOD_EPOCH[0] += 1
        if static:
            self.smethods[name] = method
        else:
            self.imethods[name] = method

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RClass({self.name})"


class RObject:
    """An instance of a user-defined class, with instance variables."""

    __slots__ = ("rclass", "ivars")

    def __init__(self, rclass: RClass):
        self.rclass = rclass
        self.ivars: dict[str, object] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"#<{self.rclass.name}>"


class RException(RObject):
    """An exception instance; carries its message in ``@message``."""

    __slots__ = ()

    def __init__(self, rclass: RClass, message: str = ""):
        super().__init__(rclass)
        self.ivars["@message"] = RString(message)

    @property
    def message(self) -> str:
        msg = self.ivars.get("@message")
        return msg.val if isinstance(msg, RString) else str(msg)


class RBlock:
    """A block/lambda: parameters, body, captured environment and self.

    ``compiled`` optionally carries the closure-compiled entry for the body
    (a :class:`repro.runtime.compile.CompiledBlock`, cached on the source
    ``BlockNode`` so every block instance created from one literal shares
    it); ``None`` means the tree-walking path evaluates ``body``.
    """

    __slots__ = ("params", "body", "env", "self_obj", "is_lambda", "sym_proc",
                 "compiled")

    def __init__(self, params: list, body: list, env: object, self_obj: object,
                 is_lambda: bool = False, sym_proc: Sym | None = None,
                 compiled: object = None):
        self.params = params
        self.body = body
        self.env = env
        self.self_obj = self_obj
        self.is_lambda = is_lambda
        # a Symbol#to_proc block calls the named method on its argument
        self.sym_proc = sym_proc
        self.compiled = compiled

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "#<Proc>"


# ---------------------------------------------------------------------------
# value helpers shared by the interpreter and native methods
# ---------------------------------------------------------------------------

def ruby_truthy(value: object) -> bool:
    """Ruby truthiness: everything except ``nil`` and ``false``."""
    return value is not None and value is not False


def ruby_eq(a: object, b: object) -> bool:
    """Structural ``==`` over runtime values."""
    if a is b:
        return True
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return a == b
    if isinstance(a, RString) and isinstance(b, RString):
        return a.val == b.val
    if isinstance(a, Sym) and isinstance(b, Sym):
        return a.name == b.name
    if isinstance(a, RArray) and isinstance(b, RArray):
        return len(a.items) == len(b.items) and all(
            ruby_eq(x, y) for x, y in zip(a.items, b.items)
        )
    if isinstance(a, RHash) and isinstance(b, RHash):
        if len(a) != len(b):
            return False
        for key, value in a.pairs():
            if not b.has_key(key) or not ruby_eq(b.get(key), value):
                return False
        return True
    if isinstance(a, RClass) and isinstance(b, RClass):
        return a.name == b.name
    return a is b


def ruby_to_s(value: object) -> str:
    """Ruby ``to_s`` for built-in values."""
    if value is None:
        return ""
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, RString):
        return value.val
    if isinstance(value, Sym):
        return value.name
    if isinstance(value, RArray):
        return ruby_inspect(value)
    if isinstance(value, RHash):
        return ruby_inspect(value)
    if isinstance(value, RClass):
        return value.name
    if isinstance(value, RException):
        return value.message
    if isinstance(value, RObject):
        return f"#<{value.rclass.name}>"
    return str(value)


def ruby_inspect(value: object) -> str:
    """Ruby ``inspect`` for built-in values."""
    if value is None:
        return "nil"
    if isinstance(value, RString):
        return repr(value.val)
    if isinstance(value, Sym):
        return f":{value.name}"
    if isinstance(value, RArray):
        return "[" + ", ".join(ruby_inspect(v) for v in value.items) + "]"
    if isinstance(value, RHash):
        parts = [f"{ruby_inspect(k)}=>{ruby_inspect(v)}" for k, v in value.pairs()]
        return "{" + ", ".join(parts) + "}"
    return ruby_to_s(value)
