"""The fuzzer's event vocabulary: one picklable, JSON-round-trippable step.

A :class:`Step` is the unit the generator emits, the harness applies, the
shrinker deletes, and the corpus stores.  Every field the replay needs is
*in* the step (literal values included), so any subsequence of a recorded
sequence replays deterministically with no generator state.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

#: column kind → the mini-Ruby type name a probe's signature uses
KIND_TYPES = {
    "integer": "Integer",
    "float": "Float",
    "string": "String",
    "text": "String",
    "datetime": "String",
    "boolean": "%bool",
}


@dataclass
class Step:
    """One fuzz event.  ``op`` selects the shape; unused fields stay None.

    ops: ``create_table`` (columns + a model-class load), ``add_column``,
    ``drop_column``, ``rename_column``, ``rename_table`` (fuzz tables only,
    with a fresh model class for the new name), ``drop_table`` (fuzz tables
    only), ``insert`` / ``update`` / ``delete`` (row traffic), ``load_probe``
    (a post-build method load querying a model), ``check`` (checkpoint: run
    every invariant now).
    """

    op: str
    table: str | None = None
    column: str | None = None
    to: str | None = None            # rename target (column or table)
    kind: str | None = None          # column kind for add_column / probes
    columns: list = field(default_factory=list)   # create_table: [[name, kind]]
    values: dict = field(default_factory=dict)    # insert / update payload
    where: list = field(default_factory=list)     # ["eq", column, literal]
    cls: str | None = None           # model / probe class to load
    model: str | None = None         # probe target model class
    shape: str | None = None         # probe shape: "pluck" | "exists"

    def to_json(self) -> dict:
        record = {}
        for key, value in asdict(self).items():
            if value is None or value == [] or value == {}:
                continue
            record[key] = value
        return record

    @classmethod
    def from_json(cls, record: dict) -> "Step":
        return cls(**record)

    def describe(self) -> str:
        if self.op == "create_table":
            cols = ", ".join(f"{n}:{k}" for n, k in self.columns)
            return f"create_table {self.table}({cols}) + class {self.cls}"
        if self.op == "add_column":
            return f"add_column {self.table}.{self.column} {self.kind}"
        if self.op == "drop_column":
            return f"drop_column {self.table}.{self.column}"
        if self.op == "rename_column":
            return f"rename_column {self.table}.{self.column} -> {self.to}"
        if self.op == "rename_table":
            return f"rename_table {self.table} -> {self.to} + class {self.cls}"
        if self.op == "drop_table":
            return f"drop_table {self.table}"
        if self.op in ("insert", "update", "delete"):
            return f"{self.op} {self.table} {self.values or ''} {self.where or ''}".rstrip()
        if self.op == "load_probe":
            return (f"load_probe {self.cls}: {self.model}.{self.shape} "
                    f"on {self.table}.{self.column}")
        return self.op


def events_to_json(events) -> list[dict]:
    return [step.to_json() for step in events]


def events_from_json(records) -> list[Step]:
    return [Step.from_json(dict(record)) for record in records]


def _ruby_literal(value) -> str:
    if value is None:
        return "nil"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return repr(value)


def probe_source(step: Step, label: str) -> str:
    """Render a ``load_probe`` step as a mini-Ruby program.

    The probe is a fresh class with one annotated class method querying the
    target model — a post-build method load whose verdict tracks the probed
    table/column through later migrations (dropping the column must flip it
    to an error on every twin identically).
    """
    method = step.cls.lower()
    if step.shape == "exists":
        value = step.values.get(step.column) if step.values else None
        query = (f"{step.model}.exists?("
                 f"{{ {step.column}: {_ruby_literal(value)} }})")
        signature = "() -> %bool"
    else:
        query = f"{step.model}.pluck(:{step.column})"
        signature = f"() -> Array<{KIND_TYPES.get(step.kind, 'String')}>"
    return (
        f"class {step.cls}\n"
        f"  type \"{signature}\", typecheck: :{label}\n"
        f"  def self.{method}\n"
        f"    {query}\n"
        f"  end\n"
        f"end\n"
    )
