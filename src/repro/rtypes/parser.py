"""Parser for RDL-style type signature strings.

Accepts the surface syntax used throughout the paper::

    (String, String) -> %bool
    (t<:Symbol) -> «if t.is_a?(Singleton) ... end»
    (k) -> v
    ({ name: String, age: Integer }) -> Boolean
    ([Integer, String]) -> Array<Integer or String>
    (t<:«comp») -> «tself»

Comp positions are delimited by guillemets ``«...»`` or the ASCII form
``{| ... |}``; an optional ``/Bound`` suffix declares the conventional
fallback type (default ``Object``), mirroring λC's ``e/A``.
"""

from __future__ import annotations

from repro.rtypes.containers import (
    ConstStringType,
    FiniteHashType,
    GenericType,
    TupleType,
)
from repro.rtypes.core import AnyType, BotType, NominalType, RType, SingletonType, make_union
from repro.rtypes.intern import fresh_copy, try_intern
from repro.rtypes.kinds import Sym
from repro.rtypes.methods import BoundArg, CompExpr, MethodType, OptionalArg, VarargArg
from repro.rtypes.vars import VarType


class TypeParseError(Exception):
    """Raised when a type signature string is malformed."""


_PUNCT = ["->", "→", "<:", "=>", "**", "(", ")", "{", "}", "[", "]", "<", ">", ",", "?", "*", "/", ":"]


class _Lexer:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.tokens: list[tuple[str, object]] = []
        self._lex()

    def _error(self, message: str) -> TypeParseError:
        return TypeParseError(f"{message} at position {self.pos} in {self.text!r}")

    def _lex(self) -> None:
        text = self.text
        while self.pos < len(text):
            ch = text[self.pos]
            if ch.isspace():
                self.pos += 1
                continue
            if ch == "«":
                self._lex_comp("«", "»")
                continue
            if text.startswith("{|", self.pos):
                self._lex_comp("{|", "|}")
                continue
            if ch == "%":
                self._lex_percent()
                continue
            if ch == ":" and self.pos + 1 < len(text) and (text[self.pos + 1].isalpha() or text[self.pos + 1] == "_"):
                self._lex_symbol()
                continue
            if ch in "'\"":
                self._lex_string(ch)
                continue
            if ch.isdigit() or (ch == "-" and self.pos + 1 < len(text) and text[self.pos + 1].isdigit()):
                self._lex_number()
                continue
            if ch.isalpha() or ch == "_":
                self._lex_word()
                continue
            for punct in _PUNCT:
                if text.startswith(punct, self.pos):
                    # `<:` is the bound operator only after a variable name;
                    # elsewhere `<` opens generics (e.g. Array<:a>)
                    if punct == "<:" and (not self.tokens or self.tokens[-1][0] != "ident"):
                        continue
                    self.tokens.append(("punct", "->" if punct == "→" else punct))
                    self.pos += len(punct)
                    break
            else:
                raise self._error(f"unexpected character {ch!r}")

    def _lex_comp(self, open_delim: str, close_delim: str) -> None:
        depth = 1
        start = self.pos + len(open_delim)
        i = start
        text = self.text
        while i < len(text):
            if text.startswith(open_delim, i):
                depth += 1
                i += len(open_delim)
            elif text.startswith(close_delim, i):
                depth -= 1
                if depth == 0:
                    self.tokens.append(("comp", text[start:i]))
                    self.pos = i + len(close_delim)
                    return
                i += len(close_delim)
            else:
                i += 1
        raise self._error(f"unterminated comp expression (missing {close_delim})")

    def _lex_percent(self) -> None:
        for name in ("%any", "%bool", "%bot"):
            if self.text.startswith(name, self.pos):
                self.tokens.append(("percent", name))
                self.pos += len(name)
                return
        raise self._error("unknown % type")

    def _lex_symbol(self) -> None:
        i = self.pos + 1
        text = self.text
        while i < len(text) and (text[i].isalnum() or text[i] in "_?!"):
            i += 1
        self.tokens.append(("symbol", text[self.pos + 1:i]))
        self.pos = i

    def _lex_string(self, quote: str) -> None:
        i = self.pos + 1
        text = self.text
        chars: list[str] = []
        while i < len(text) and text[i] != quote:
            if text[i] == "\\" and i + 1 < len(text):
                chars.append(text[i + 1])
                i += 2
            else:
                chars.append(text[i])
                i += 1
        if i >= len(text):
            raise self._error("unterminated string literal")
        self.tokens.append(("string", "".join(chars)))
        self.pos = i + 1

    def _lex_number(self) -> None:
        i = self.pos
        text = self.text
        if text[i] == "-":
            i += 1
        while i < len(text) and text[i].isdigit():
            i += 1
        is_float = False
        if i < len(text) and text[i] == "." and i + 1 < len(text) and text[i + 1].isdigit():
            is_float = True
            i += 1
            while i < len(text) and text[i].isdigit():
                i += 1
        literal = text[self.pos:i]
        self.tokens.append(("number", float(literal) if is_float else int(literal)))
        self.pos = i

    def _lex_word(self) -> None:
        i = self.pos
        text = self.text
        while i < len(text) and (text[i].isalnum() or text[i] == "_"):
            i += 1
        # Allow namespaced constants: ActiveRecord::Base
        while text.startswith("::", i):
            j = i + 2
            while j < len(text) and (text[j].isalnum() or text[j] == "_"):
                j += 1
            i = j
        word = text[self.pos:i]
        kind = "const" if word[0].isupper() else "ident"
        self.tokens.append((kind, word))
        self.pos = i


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _Lexer(text).tokens
        self.index = 0

    # -- token helpers ----------------------------------------------------
    def peek(self) -> tuple[str, object] | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> tuple[str, object]:
        token = self.peek()
        if token is None:
            raise TypeParseError(f"unexpected end of type in {self.text!r}")
        self.index += 1
        return token

    def accept(self, kind: str, value: object = None) -> bool:
        token = self.peek()
        if token and token[0] == kind and (value is None or token[1] == value):
            self.index += 1
            return True
        return False

    def expect(self, kind: str, value: object = None) -> object:
        token = self.next()
        if token[0] != kind or (value is not None and token[1] != value):
            raise TypeParseError(
                f"expected {value or kind}, found {token[1]!r} in {self.text!r}"
            )
        return token[1]

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)

    # -- grammar -----------------------------------------------------------
    def method_type(self) -> MethodType:
        self.expect("punct", "(")
        args: list[RType] = []
        if not self.accept("punct", ")"):
            while True:
                args.append(self.arg_spec())
                if self.accept("punct", ")"):
                    break
                self.expect("punct", ",")
        block: MethodType | None = None
        if self.accept("punct", "{"):
            block = self.method_type()
            self.expect("punct", "}")
        self.expect("punct", "->")
        ret = self.type_or_comp()
        return MethodType(args, block, ret)

    def arg_spec(self) -> RType:
        if self.accept("punct", "?"):
            return OptionalArg(self._bound_or_type())
        if self.accept("punct", "*"):
            return VarargArg(self._bound_or_type())
        return self._bound_or_type()

    def _bound_or_type(self) -> RType:
        token = self.peek()
        if token and token[0] == "ident":
            following = self.tokens[self.index + 1] if self.index + 1 < len(self.tokens) else None
            if following == ("punct", "<:"):
                var = str(self.next()[1])
                self.expect("punct", "<:")
                return BoundArg(var, self.type_or_comp())
        return self.type_or_comp()

    def type_or_comp(self) -> RType:
        token = self.peek()
        if token and token[0] == "comp":
            code = str(self.next()[1])
            bound: RType = NominalType("Object")
            if self.accept("punct", "/"):
                bound = self.union_type()
            return CompExpr(code, bound)
        return self.union_type()

    def union_type(self) -> RType:
        members = [self.primary_type()]
        while True:
            token = self.peek()
            if token and token[0] == "ident" and token[1] == "or":
                self.next()
                members.append(self.primary_type())
            else:
                break
        if len(members) == 1:
            return members[0]
        return make_union(members)

    def primary_type(self) -> RType:
        token = self.next()
        kind, value = token
        if kind == "percent":
            if value == "%any":
                return AnyType()
            if value == "%bot":
                return BotType()
            return NominalType("Boolean")
        if kind == "symbol":
            return SingletonType(Sym(str(value)))
        if kind == "number":
            return SingletonType(value)
        if kind == "string":
            return ConstStringType(str(value))
        if kind == "comp":
            bound: RType = NominalType("Object")
            if self.accept("punct", "/"):
                bound = self.union_type()
            return CompExpr(str(value), bound)
        if kind == "const":
            name = str(value)
            if self.accept("punct", "<"):
                params = [self.type_or_comp()]
                while self.accept("punct", ","):
                    params.append(self.type_or_comp())
                self.expect("punct", ">")
                return GenericType(name, params)
            return NominalType(name)
        if kind == "ident":
            name = str(value)
            if name == "nil":
                return SingletonType(None)
            if name == "true":
                return SingletonType(True)
            if name == "false":
                return SingletonType(False)
            if name == "self":
                return VarType("self")
            return VarType(name)
        if kind == "punct" and value == "{":
            return self.finite_hash()
        if kind == "punct" and value == "[":
            return self.tuple_type()
        if kind == "punct" and value == "(":
            inner = self.type_or_comp()
            self.expect("punct", ")")
            return inner
        raise TypeParseError(f"unexpected token {value!r} in {self.text!r}")

    def finite_hash(self) -> FiniteHashType:
        elts: dict[object, RType] = {}
        rest: RType | None = None
        optional: set[object] = set()
        if self.accept("punct", "}"):
            return FiniteHashType(elts)
        while True:
            if self.accept("punct", "**"):
                rest = self.type_or_comp()
            else:
                key = self._hash_key()
                is_optional = self.accept("punct", "?")
                value = self.type_or_comp()
                elts[key] = value
                if is_optional:
                    optional.add(key)
            if self.accept("punct", "}"):
                break
            self.expect("punct", ",")
        return FiniteHashType(elts, rest, optional)

    def _hash_key(self) -> object:
        token = self.next()
        kind, value = token
        if kind in ("ident", "const"):
            self.expect("punct", ":")
            return Sym(str(value))
        if kind == "symbol":
            self.expect("punct", "=>")
            return Sym(str(value))
        if kind == "string":
            if not self.accept("punct", "=>"):
                self.expect("punct", ":")
            return str(value)
        raise TypeParseError(f"bad finite hash key {value!r} in {self.text!r}")

    def tuple_type(self) -> TupleType:
        elts: list[RType] = []
        if self.accept("punct", "]"):
            return TupleType(elts)
        while True:
            elts.append(self.type_or_comp())
            if self.accept("punct", "]"):
                break
            self.expect("punct", ",")
        return TupleType(elts)


# Content-keyed caches of parsed signatures/types.  Every universe installs
# the same ~4k library annotation strings, and profiling shows signature
# parsing dominating cold universe construction.  Parsing is pure, so the
# result is cacheable — with one subtlety: signatures containing *mutable*
# types (tuples, finite hashes, const strings) are subject to weak updates
# (§4), so cache hits hand out a `fresh_copy` (private mutable spine, shared
# immutable leaves).  Fully-immutable signatures intern to one canonical
# object shared by every universe in the process.
_METHOD_TYPE_CACHE: dict[str, tuple[MethodType, bool]] = {}
_TYPE_CACHE: dict[str, tuple[RType, bool]] = {}
_PARSE_CACHE_MAX = 16384


def _cached_parse(text: str, cache: dict, produce):
    entry = cache.get(text)
    if entry is not None:
        result, shared = entry
        return result if shared else fresh_copy(result)
    result = produce(text)
    canonical = try_intern(result)
    if len(cache) >= _PARSE_CACHE_MAX:
        cache.clear()
    if canonical is not None:
        cache[text] = (canonical, True)
        return canonical
    cache[text] = (result, False)
    # the first caller must not alias the cached pristine copy either
    return fresh_copy(result)


def _parse_method_type_uncached(text: str) -> MethodType:
    parser = _Parser(text)
    result = parser.method_type()
    if not parser.at_end():
        raise TypeParseError(f"trailing tokens after method type in {text!r}")
    return result


def _parse_type_uncached(text: str) -> RType:
    parser = _Parser(text)
    result = parser.type_or_comp()
    if not parser.at_end():
        raise TypeParseError(f"trailing tokens after type in {text!r}")
    return result


def parse_method_type(text: str) -> MethodType:
    """Parse a full method signature string into a :class:`MethodType`."""
    return _cached_parse(text, _METHOD_TYPE_CACHE, _parse_method_type_uncached)


def parse_type(text: str) -> RType:
    """Parse a standalone type (no argument list / arrow)."""
    return _cached_parse(text, _TYPE_CACHE, _parse_type_uncached)
