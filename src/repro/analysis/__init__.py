"""``repro.analysis`` — static analysis over comp-typed mini-Ruby code.

Three cooperating passes, none of which execute any type-level code:

* **footprint inference** (:mod:`repro.analysis.footprint`) — an abstract
  interpreter over the mini-Ruby AST that over-approximates each method's
  *dependency footprint*: the tables, ``table.column`` pairs, comp codes,
  and native helpers its checking could possibly read.  The contract is
  soundness relative to the dynamic tracker: for every method, the static
  footprint is a superset of the :class:`~repro.incremental.deps.MethodDeps`
  the checker records while actually verifying it (``static ⊇ dynamic``),
  falling back to a wildcard where literal reasoning runs out.
* **effect lint** (:mod:`repro.analysis.lint`) — a flow-insensitive
  purity/termination checker mirroring the §4 rules
  (:mod:`repro.comp.termination`) as structured diagnostics with stable
  rule ids instead of hard errors: loops in type-level code, calls to
  possibly-divergent or impure methods, iterators with mutating blocks,
  and helper-recursion cycles the dynamic checker silently assumes away.
* **consumers** — the incremental scheduler pre-seeds dirty-set
  resolution from static footprints (methods whose verdicts carry no
  dynamic deps are re-dirtied exactly when their static footprint is
  affected), the shard planner prices methods by analysis-derived static
  cost before any wall time is observed, and warm sessions skip delta
  syncs whose changed tables no pending method's footprint names.

Surfaces: ``python -m repro.analysis`` (the repo-wide diagnostics CLI),
``CompRDL.analyze()``, ``table1.py --lint``, and ``analysis.*`` keys in
``metrics_snapshot()``.
"""

from repro.analysis.footprint import (
    FootprintAnalyzer,
    StaticFootprint,
    TABLE_READING_NATIVES,
)
from repro.analysis.lint import Diagnostic, EffectLinter, lint_universe
from repro.analysis.report import AnalysisReport, analyze_universe

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "EffectLinter",
    "FootprintAnalyzer",
    "StaticFootprint",
    "TABLE_READING_NATIVES",
    "analyze_universe",
    "lint_universe",
]
