"""The Sequel-like ORM DSL.

Sequel exposes two styles the paper's Code.org and Journey benchmarks use:
datasets (``DB[:users].where(...)``) and models (``class Account <
Sequel::Model``).  Datasets are :class:`RelationValue`s without a model
class — rows materialize as hashes, matching Sequel's behaviour.
"""

from __future__ import annotations

from repro.orm.relation import RelationValue, row_to_record, table_name_for_class
from repro.orm.activerecord import (
    _conditions_from,
    _dispatch_relation,
    _plain,
    _relation_call,
    _sym_or_str,
)
from repro.rtypes.kinds import Sym
from repro.runtime.errors import RubyError
from repro.runtime.objects import RArray, RClass, RHash, RMethod, RString, ruby_to_s


class SequelDBValue:
    """The global ``DB`` handle: ``DB[:users]`` yields a dataset."""

    comprdl_class_name = "Sequel::Database"

    def __init__(self, db):
        self.db = db

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "#<Sequel::Database>"


def install_sequel(interp, db) -> None:
    """Register ``Sequel::Model``, ``Sequel::Dataset`` and the ``DB`` handle."""
    interp.define_class("Sequel::Dataset", "Object")
    interp.define_class("Sequel::Database", "Object")
    model = interp.define_class("Sequel::Model", "Object")
    interp.consts["DB"] = SequelDBValue(db)

    _define_model_queries(interp, model)
    interp.foreign_handlers.append(_dispatch_sequel)
    interp.class_def_hooks.append(_sequel_model_hook)


def _inherits(klass: RClass, name: str) -> bool:
    return any(a.name == name for a in klass.ancestors())


def _sequel_model_hook(interp, klass: RClass) -> None:
    if klass.name == "Sequel::Model" or not _inherits(klass, "Sequel::Model"):
        return
    from repro.orm.activerecord import _define_accessor, _define_instance_persistence

    table = table_name_for_class(klass.name)
    schema = interp.db.schema_of(table) if interp.db else None
    if schema is None:
        return
    klass.cvars["@table_name"] = RString(table)
    for column in schema.columns.values():
        _define_accessor(interp, klass, column)
    _define_instance_persistence(interp, klass, table)


def _define_model_queries(interp, model: RClass) -> None:
    forward = ["where", "exclude", "first", "last", "all", "count", "order",
               "limit", "each", "map", "to_a", "find", "[]", "dataset",
               "any?", "empty?", "max", "min", "sum_of", "paged_each"]
    for name in forward:
        def fwd(i, recv, args, block, _name=name):
            table = table_name_for_class(recv.name)
            # schema_of registers the table read with the dependency tracker
            if i.db is None or i.db.schema_of(table) is None:
                raise RubyError("SequelError", f"no table for model {recv.name}")
            relation = RelationValue(i.db, table, model_class=recv)
            return _sequel_call(i, relation, _name, args, block)
        model.define(name, RMethod(name, native=fwd), static=True)

    def create(i, recv, args, block):
        table = table_name_for_class(recv.name)
        attrs = args[0] if args and isinstance(args[0], RHash) else RHash()
        row = {}
        for key, value in attrs.pairs():
            name = key.name if isinstance(key, Sym) else ruby_to_s(key)
            row[name] = value.val if isinstance(value, RString) else value
        stored = i.db.insert(table, row)
        return row_to_record(i, recv, i.db.schema_of(table), stored)

    model.define("create", RMethod("create", native=create), static=True)
    model.define("insert", RMethod("insert", native=create), static=True)


def _dispatch_sequel(interp, recv, name, args, block, line):
    if isinstance(recv, SequelDBValue):
        if name == "[]":
            table = _sym_or_str(args[0]) if args else ""
            if recv.db.schema_of(table) is None:
                raise RubyError("SequelError", f"no such table {table!r}")
            return True, RelationValue(recv.db, table, model_class=None)
        if name == "tables":
            return True, RArray([Sym(t) for t in recv.db.all_schemas()])
        if name in ("inspect", "to_s"):
            return True, RString("#<Sequel::Database>")
        raise RubyError("NoMethodError", f"undefined method '{name}' for DB")
    if isinstance(recv, RelationValue) and recv.model_class is None:
        return True, _sequel_call(interp, recv, name, args, block)
    return False, None


def _sequel_call(interp, relation: RelationValue, name: str, args, block):
    """Sequel-specific dataset methods, falling back to the shared core."""
    handled, value = _sequel_extra(interp, relation, name, args, block)
    if handled:
        return value
    return _relation_call(interp, relation, name, args, block)


def _sequel_extra(interp, relation: RelationValue, name: str, args, block):
    """The dataset methods Sequel adds on top of the shared relation core.

    Returns ``(handled, value)`` so the ActiveRecord dispatcher can also
    consult it without recursing.
    """
    if name == "exclude":
        conditions = _conditions_from(args)
        return True, relation.with_sql("__not__", (conditions,))
    if name == "[]":
        probe = relation.with_conditions(_conditions_from(args))
        rows = probe.rows()
        if not rows:
            return True, None
        schema = relation.db.schema_of(relation.base_table)
        return True, row_to_record(interp, relation.model_class, schema, rows[0])
    if name == "get":
        column = _sym_or_str(args[0]) if args else "id"
        rows = relation.rows()
        if not rows:
            return True, None
        value = rows[0].get(column)
        return True, (RString(value) if isinstance(value, str) else value)
    if name == "select_map":
        column = _sym_or_str(args[0]) if args else "id"
        out = []
        for row in relation.rows():
            value = row.get(column)
            out.append(RString(value) if isinstance(value, str) else value)
        return True, RArray(out)
    if name == "insert":
        attrs = args[0] if args and isinstance(args[0], RHash) else RHash()
        row = {}
        for key, value in attrs.pairs():
            key_name = _sym_or_str(key)
            row[key_name] = _plain(value)
        stored = relation.db.insert(relation.base_table, row)
        return True, stored.get("id")
    if name == "update" and relation.model_class is None:
        updates = _conditions_from(args)
        from repro.db.engine import QueryEngine

        engine = QueryEngine(relation.db)
        conditions = [dict(c) for c in relation.conditions]
        changed = relation.db.update_rows(
            relation.base_table,
            lambda row: all(engine._matches(row, c) for c in conditions),
            updates)
        return True, changed
    if name == "delete":
        return True, _relation_call(interp, relation, "delete_all", args, block)
    if name == "paged_each":
        return True, _relation_call(interp, relation, "each", args, block)
    if name == "sum_of":
        return True, _relation_call(interp, relation, "sum", args, block)
    if name == "max":
        return True, _relation_call(interp, relation, "maximum", args, block)
    if name == "min":
        return True, _relation_call(interp, relation, "minimum", args, block)
    return False, None
