"""Type-level helper methods shared by the annotation sets.

The paper factors its 586 comp types through 83 helper methods (§5.1).
Here the front-line helpers that the paper shows in Ruby (``schema_type``,
Fig. 1b) are written in mini-Ruby and loaded through the interpreter —
demonstrating that type-level code really is object-language code — while
the leaf helpers (schema lookup, folding, SQL checking) are native.

Every helper is annotated ``terminates: :+`` / ``pure: :+`` so the §4
termination checker accepts comp types that call it.
"""

from __future__ import annotations

from repro.db.engine import pluralize, snake_case
from repro.rtypes import (
    AnyType,
    ConstStringType,
    FiniteHashType,
    GenericType,
    NominalType,
    RType,
    SingletonType,
    TupleType,
    UnionType,
    make_union,
)
from repro.rtypes.kinds import ClassRef, Sym
from repro.runtime.errors import RubyError
from repro.runtime.objects import RArray, RClass, RHash, RMethod, RString

_OBJECT = NominalType("Object")
_BOOL = NominalType("Boolean")
_NIL = SingletonType(None)


# mini-Ruby helpers, written as in the paper's Fig. 1b
_RUBY_HELPERS = """
type :schema_type, "(Type) -> Type", terminates: :+, pure: :+
def schema_type(t)
  if t.is_a?(Generic) && t.base == Table
    t.param(0)
  elsif t.is_a?(Singleton)
    db_table_type(t).param(0)
  else
    fallback_hash_type
  end
end

type :query_schema_type, "(Type) -> Type", terminates: :+, pure: :+
def query_schema_type(t)
  optionalize(schema_type(t))
end

type :joins_type, "(Type, Type) -> Type", terminates: :+, pure: :+
def joins_type(tself, t)
  if t.is_a?(Singleton)
    check_association(tself, t)
    Generic.new(Table, schema_type(tself).merge({ t.val => schema_type(t) }), model_of(tself))
  else
    Nominal.new(Table)
  end
end

type :table_type_of, "(Type) -> Type", terminates: :+, pure: :+
def table_type_of(tself)
  if tself.is_a?(Generic) && tself.base == Table
    tself
  else
    Generic.new(Table, schema_type(tself), model_of(tself))
  end
end
"""


def install(rdl) -> None:
    """Install all native and mini-Ruby type-level helpers."""
    interp = rdl.interp
    registry = rdl.registry
    obj = interp.classes["Object"]

    for name, fn in _NATIVE_HELPERS.items():
        obj.define(name, RMethod(name, native=fn))
        registry.annotate("Object", name, "(*Type) -> Type",
                          terminates="+", pure="+")
        registry.helper_methods.add(name)

    interp.run(_RUBY_HELPERS)
    for name in ("schema_type", "query_schema_type", "joins_type", "table_type_of"):
        registry.helper_methods.add(name)


# ---------------------------------------------------------------------------
# native helper implementations
# ---------------------------------------------------------------------------

def _type_error(message: str):
    raise RubyError("CompTypeError", message)


def _arg(args, index, default=None):
    return args[index] if index < len(args) else default


def _as_rtype(interp, value) -> RType:
    from repro.comp.reflect import to_rtype

    return to_rtype(interp, value)


def _table_name_for(value) -> str:
    """Table name of a singleton type's value (class or symbol)."""
    if isinstance(value, ClassRef):
        return pluralize(snake_case(value.name.split("::")[-1]))
    if isinstance(value, Sym):
        name = value.name
        return name if name.endswith("s") else pluralize(name)
    if isinstance(value, str):
        return value
    raise RubyError("CompTypeError", f"cannot derive a table from {value!r}")


def _db_table_type(i, recv, args, block):
    """``Table<{...}>`` for a singleton class/symbol, via RDL.db_schema."""
    t = _arg(args, 0)
    if not isinstance(t, SingletonType):
        return GenericType("Hash", [NominalType("Symbol"), _OBJECT])
    table = _table_name_for(t.value)
    if i.db is None:
        _type_error("no database loaded")
    schema = i.db.schema_of(table)
    if schema is None:
        _type_error(f"query against unknown table '{table}'")
    return schema.table_type()


def _fallback_hash_type(i, recv, args, block):
    return GenericType("Hash", [NominalType("Symbol"), _OBJECT])


def _optionalize(i, recv, args, block):
    """All keys of a finite hash type become optional (query conditions
    mention a subset of columns); nested table hashes too."""
    t = _arg(args, 0)
    if not isinstance(t, FiniteHashType):
        return t
    elts = {}
    for key, value in t.elts.items():
        if isinstance(value, FiniteHashType):
            value = _optionalize(i, recv, [value], None)
        elts[key] = value
    return FiniteHashType(elts, rest=None, optional_keys=set(elts))


def _model_of(i, recv, args, block):
    """The model nominal type of a receiver (class singleton or Table)."""
    t = _arg(args, 0)
    if isinstance(t, SingletonType) and isinstance(t.value, ClassRef):
        return NominalType(t.value.name)
    if isinstance(t, GenericType) and t.base == "Table" and len(t.params) >= 2:
        return t.params[1]
    return _OBJECT


def _check_association(i, recv, args, block):
    """The §2.1 invariant: tables may only be joined along a declared
    Rails association."""
    tself = _arg(args, 0)
    t = _arg(args, 1)
    if not (isinstance(t, SingletonType) and isinstance(tself, (SingletonType, GenericType))):
        return True
    assoc_table = _table_name_for(t.value)
    if isinstance(tself, SingletonType):
        owner_table = _table_name_for(tself.value)
    else:
        owner = _model_of(i, recv, [tself], None)
        if not isinstance(owner, NominalType) or owner.name == "Object":
            return True
        owner_table = pluralize(snake_case(owner.name.split("::")[-1]))
    if i.db is not None and not i.db.associated(owner_table, assoc_table):
        _type_error(
            f"cannot join '{owner_table}' with '{assoc_table}': "
            f"no declared association"
        )
    return True


def _sql_typecheck(i, recv, args, block):
    """Fig. 3: type check a raw SQL WHERE fragment, returning String."""
    from repro.sqltc.checker import SqlTypeError, check_fragment
    from repro.sqltc.parser import SqlParseError

    tself = _arg(args, 0)
    t = _arg(args, 1)
    targs = _arg(args, 2)
    if not isinstance(t, ConstStringType) or t.is_promoted:
        return NominalType("String")
    tables = _scope_tables(i, tself)
    kinds = _placeholder_kinds(targs)
    try:
        check_fragment(i.db, tables, t.value, kinds)
    except (SqlTypeError, SqlParseError) as exc:
        _type_error(f"SQL type error: {exc}")
    return ConstStringType(t.value)


def _scope_tables(i, tself) -> list[str]:
    if isinstance(tself, SingletonType):
        return [_table_name_for(tself.value)]
    if isinstance(tself, GenericType) and tself.base == "Table" and tself.params:
        fh = tself.params[0]
        if isinstance(fh, FiniteHashType):
            base: list[str] = []
            joined: list[str] = []
            for key, value in fh.elts.items():
                if isinstance(value, FiniteHashType) and isinstance(key, Sym):
                    joined.append(key.name)
            # base table: best-effort reverse lookup by column shape (reads
            # the whole schema, so it registers a wildcard dependency)
            if i.db is not None:
                for name, schema in i.db.all_schemas().items():
                    columns = set(schema.columns)
                    keys = {k.name for k in fh.elts if isinstance(k, Sym)
                            and not isinstance(fh.elts[k], FiniteHashType)}
                    if keys and keys == columns:
                        base = [name]
                        break
            return (base or ["t"]) + joined
    return ["t"]


def _placeholder_kinds(targs) -> list[str]:
    kinds: list[str] = []
    if isinstance(targs, TupleType):
        for t in targs.elts:
            kinds.append(_kind_of(t))
    elif isinstance(targs, RType):
        kinds.append(_kind_of(targs))
    return kinds


def _kind_of(t: RType) -> str:
    if isinstance(t, SingletonType):
        t = NominalType(t.base_name)
    if isinstance(t, ConstStringType):
        return "string"
    if isinstance(t, NominalType):
        return {
            "Integer": "integer", "Float": "float", "String": "string",
            "Boolean": "boolean", "TrueClass": "boolean",
            "FalseClass": "boolean",
        }.get(t.name, "string")
    return "string"


def _where_arg_type(i, recv, args, block):
    """where's first argument: a raw-SQL const string (checked), or a
    partial schema hash (Fig. 3, line 10)."""
    tself = _arg(args, 0)
    t = _arg(args, 1)
    targs = _arg(args, 2)
    if isinstance(t, ConstStringType) and not t.is_promoted:
        return _sql_typecheck(i, recv, [tself, t, targs], None)
    if isinstance(t, NominalType) and t.name == "String":
        # a dynamically built SQL string cannot be checked statically
        return NominalType("String")
    schema = _schema_of(i, tself)
    return _optionalize(i, recv, [schema], None)


def _schema_of(i, tself) -> RType:
    if isinstance(tself, GenericType) and tself.base == "Table" and tself.params:
        return tself.params[0]
    if isinstance(tself, SingletonType):
        table_type = _db_table_type(i, None, [tself], None)
        if isinstance(table_type, GenericType) and table_type.params:
            return table_type.params[0]
    return GenericType("Hash", [NominalType("Symbol"), _OBJECT])


# -- hash helpers --------------------------------------------------------------

def _hash_access_type(i, recv, args, block):
    """The paper's flagship Hash#[] comp type (§2.2)."""
    tself = _arg(args, 0)
    t = _arg(args, 1)
    if isinstance(tself, FiniteHashType) and isinstance(t, (SingletonType, ConstStringType)):
        key = t.value if isinstance(t, SingletonType) else t.value
        entry = tself.elts.get(key)
        if entry is None and isinstance(key, str):
            entry = tself.elts.get(key)
        if entry is not None:
            return entry
        return _NIL
    return _hash_value_type(i, recv, [tself], None)


def _hash_fetch_type(i, recv, args, block):
    tself = _arg(args, 0)
    t = _arg(args, 1)
    if isinstance(tself, FiniteHashType) and isinstance(t, SingletonType):
        entry = tself.elts.get(t.value)
        if entry is None:
            _type_error(f"hash has no key {t.to_s()}")
        return entry
    return _hash_value_type(i, recv, [tself], None)


def _hash_value_type(i, recv, args, block):
    tself = _arg(args, 0)
    if isinstance(tself, FiniteHashType):
        return tself.value_type()
    if isinstance(tself, GenericType) and tself.base == "Hash" and len(tself.params) == 2:
        return tself.params[1]
    return _OBJECT


def _hash_key_type(i, recv, args, block):
    tself = _arg(args, 0)
    if isinstance(tself, FiniteHashType):
        return make_union([SingletonType(k) if isinstance(k, Sym) else ConstStringType(k)
                           for k in tself.elts]) if tself.elts else _OBJECT
    if isinstance(tself, GenericType) and tself.base == "Hash" and len(tself.params) == 2:
        return tself.params[0]
    return _OBJECT


def _hash_keys_type(i, recv, args, block):
    tself = _arg(args, 0)
    if isinstance(tself, FiniteHashType):
        return TupleType([SingletonType(k) if isinstance(k, Sym) else ConstStringType(str(k))
                          for k in tself.elts])
    if isinstance(tself, GenericType) and tself.base == "Hash":
        return GenericType("Array", [tself.params[0]])
    return GenericType("Array", [_OBJECT])


def _hash_values_type(i, recv, args, block):
    tself = _arg(args, 0)
    if isinstance(tself, FiniteHashType):
        return TupleType(list(tself.elts.values()))
    if isinstance(tself, GenericType) and tself.base == "Hash":
        return GenericType("Array", [tself.params[1]])
    return GenericType("Array", [_OBJECT])


def _hash_merge_type(i, recv, args, block):
    tself = _arg(args, 0)
    t = _arg(args, 1)
    if isinstance(tself, FiniteHashType) and isinstance(t, FiniteHashType):
        return tself.merged(t)
    return GenericType("Hash", [
        make_union([_hash_key_type(i, recv, [tself], None), _hash_key_type(i, recv, [t], None)]),
        make_union([_hash_value_type(i, recv, [tself], None), _hash_value_type(i, recv, [t], None)]),
    ])


def _hash_size_type(i, recv, args, block):
    tself = _arg(args, 0)
    if isinstance(tself, FiniteHashType):
        return SingletonType(len(tself.elts))
    return NominalType("Integer")


def _hash_to_a_type(i, recv, args, block):
    tself = _arg(args, 0)
    if isinstance(tself, FiniteHashType):
        return TupleType([
            TupleType([SingletonType(k) if isinstance(k, Sym) else ConstStringType(str(k)), v])
            for k, v in tself.elts.items()
        ])
    return GenericType("Array", [GenericType("Array", [_OBJECT])])


# -- array / tuple helpers --------------------------------------------------------

def _tuple_index_type(i, recv, args, block):
    """Array#[] — same logic as Hash#[] but for tuples (§2.2)."""
    tself = _arg(args, 0)
    t = _arg(args, 1)
    if isinstance(tself, TupleType) and isinstance(t, SingletonType) \
            and isinstance(t.value, int):
        index = t.value
        if -len(tself.elts) <= index < len(tself.elts):
            return tself.elts[index]
        return _NIL
    return _array_elem_type(i, recv, [tself], None)


def _tuple_first_type(i, recv, args, block):
    tself = _arg(args, 0)
    if isinstance(tself, TupleType):
        return tself.elts[0] if tself.elts else _NIL
    return _array_elem_type(i, recv, [tself], None)


def _tuple_last_type(i, recv, args, block):
    tself = _arg(args, 0)
    if isinstance(tself, TupleType):
        return tself.elts[-1] if tself.elts else _NIL
    return _array_elem_type(i, recv, [tself], None)


def _array_elem_type(i, recv, args, block):
    tself = _arg(args, 0)
    if isinstance(tself, TupleType):
        return make_union(tself.elts) if tself.elts else _OBJECT
    if isinstance(tself, GenericType) and tself.base == "Array" and tself.params:
        return tself.params[0]
    return _OBJECT


def _tuple_length_type(i, recv, args, block):
    tself = _arg(args, 0)
    if isinstance(tself, TupleType):
        return SingletonType(len(tself.elts))
    return NominalType("Integer")


def _tuple_concat_type(i, recv, args, block):
    tself = _arg(args, 0)
    t = _arg(args, 1)
    if isinstance(tself, TupleType) and isinstance(t, TupleType):
        return TupleType(list(tself.elts) + list(t.elts))
    return GenericType("Array", [make_union([
        _array_elem_type(i, recv, [tself], None),
        _array_elem_type(i, recv, [t], None),
    ])])


def _tuple_reverse_type(i, recv, args, block):
    tself = _arg(args, 0)
    if isinstance(tself, TupleType):
        return TupleType(list(reversed(tself.elts)))
    return tself


def _array_of_elem(i, recv, args, block):
    return GenericType("Array", [_array_elem_type(i, recv, args, block)])


def _array_elem_or_nil(i, recv, args, block):
    return make_union([_array_elem_type(i, recv, args, block), _NIL])


def _tuple_compact_type(i, recv, args, block):
    tself = _arg(args, 0)
    if isinstance(tself, TupleType):
        kept = [t for t in tself.elts
                if not (isinstance(t, SingletonType) and t.value is None)]
        return TupleType(kept)
    return _array_of_elem(i, recv, args, block)


def _tuple_empty_type(i, recv, args, block):
    tself = _arg(args, 0)
    if isinstance(tself, TupleType):
        return SingletonType(len(tself.elts) == 0)
    return _BOOL


def _hash_empty_type(i, recv, args, block):
    tself = _arg(args, 0)
    if isinstance(tself, FiniteHashType):
        return SingletonType(len(tself.elts) == 0)
    return _BOOL


def _hash_has_key_type(i, recv, args, block):
    tself, t = _arg(args, 0), _arg(args, 1)
    if isinstance(tself, FiniteHashType) and isinstance(t, SingletonType):
        return SingletonType(t.value in tself.elts)
    return _BOOL


# -- string helpers -----------------------------------------------------------------

def _cs(t) -> str | None:
    if isinstance(t, ConstStringType) and not t.is_promoted:
        return t.value
    return None


def _str_concat_type(i, recv, args, block):
    a, b = _cs(_arg(args, 0)), _cs(_arg(args, 1))
    if a is not None and b is not None:
        return ConstStringType(a + b)
    return NominalType("String")


_UNARY_STR_FOLDS = {
    "upcase": str.upper, "downcase": str.lower, "capitalize": str.capitalize,
    "swapcase": str.swapcase, "strip": str.strip, "lstrip": str.lstrip,
    "rstrip": str.rstrip, "reverse": lambda s: s[::-1],
    "chomp": lambda s: s.removesuffix("\n"), "chop": lambda s: s[:-1],
}


def _str_fold_unary(i, recv, args, block):
    tself = _arg(args, 0)
    op = _arg(args, 1)
    value = _cs(tself)
    op_name = op.name if isinstance(op, Sym) else (op.val if isinstance(op, RString) else None)
    if value is not None and op_name in _UNARY_STR_FOLDS:
        return ConstStringType(_UNARY_STR_FOLDS[op_name](value))
    return NominalType("String")


def _str_length_type(i, recv, args, block):
    value = _cs(_arg(args, 0))
    if value is not None:
        return SingletonType(len(value))
    return NominalType("Integer")


def _str_mult_type(i, recv, args, block):
    value = _cs(_arg(args, 0))
    n = _arg(args, 1)
    if value is not None and isinstance(n, SingletonType) and isinstance(n.value, int):
        return ConstStringType(value * n.value)
    return NominalType("String")


def _str_to_sym_type(i, recv, args, block):
    value = _cs(_arg(args, 0))
    if value is not None:
        return SingletonType(Sym(value))
    return NominalType("Symbol")


def _str_empty_type(i, recv, args, block):
    value = _cs(_arg(args, 0))
    if value is not None:
        return SingletonType(len(value) == 0)
    return _BOOL


def _str_to_i_type(i, recv, args, block):
    value = _cs(_arg(args, 0))
    if value is not None:
        import re

        match = re.match(r"\s*[+-]?\d+", value)
        return SingletonType(int(match.group(0)) if match else 0)
    return NominalType("Integer")


# a general const-string folding table: (python fold, fallback kind)
_STR_CALL_FOLDS: dict = {
    "chr": (lambda s, a: s[0] if s else "", "String"),
    "squeeze": (lambda s, a: __import__("repro.runtime.corelib.string_methods",
                                        fromlist=["_squeeze"])._squeeze(s), "String"),
    "delete": (lambda s, a: "".join(c for c in s if c not in a[0]), "String"),
    "delete_prefix": (lambda s, a: s.removeprefix(a[0]), "String"),
    "delete_suffix": (lambda s, a: s.removesuffix(a[0]), "String"),
    "tr": (lambda s, a: s.translate(str.maketrans(a[0][: len(a[1])], a[1][: len(a[0])])), "String"),
    "sub": (lambda s, a: s.replace(a[0], a[1], 1), "String"),
    "gsub": (lambda s, a: s.replace(a[0], a[1]), "String"),
    "succ": (lambda s, a: s[:-1] + chr(ord(s[-1]) + 1) if s else "", "String"),
    "next": (lambda s, a: s[:-1] + chr(ord(s[-1]) + 1) if s else "", "String"),
    "include?": (lambda s, a: a[0] in s, "%bool"),
    "start_with?": (lambda s, a: s.startswith(tuple(a)) if a else False, "%bool"),
    "end_with?": (lambda s, a: s.endswith(tuple(a)) if a else False, "%bool"),
    "index": (lambda s, a: (s.find(a[0]) if s.find(a[0]) >= 0 else None), "Integer or nil"),
    "rindex": (lambda s, a: (s.rfind(a[0]) if s.rfind(a[0]) >= 0 else None), "Integer or nil"),
    "count": (lambda s, a: sum(s.count(c) for c in a[0]), "Integer"),
    "hex": (lambda s, a: int(s, 16) if s else 0, "Integer"),
    "oct": (lambda s, a: int(s, 8) if s else 0, "Integer"),
    "bytesize": (lambda s, a: len(s.encode("utf-8")), "Integer"),
    "ord": (lambda s, a: ord(s[0]) if s else None, "Integer"),
    "casecmp?": (lambda s, a: s.lower() == a[0].lower(), "%bool"),
}


def _str_fold_call(i, recv, args, block):
    """Generic const-string folding for String methods with literal args.

    ``str_fold_call(tself, :op, targs)`` — when the receiver and every
    argument are const strings / singletons, the operation folds to a
    singleton result; otherwise it falls back to the conventional type.
    """
    tself, op, targs = _arg(args, 0), _arg(args, 1), _arg(args, 2)
    op_name = op.name if isinstance(op, Sym) else str(op)
    fold, fallback = _STR_CALL_FOLDS.get(op_name, (None, "String"))
    value = _cs(tself)
    literal_args: list = []
    folded = value is not None and fold is not None
    if isinstance(targs, TupleType):
        for t in targs.elts:
            if isinstance(t, ConstStringType) and not t.is_promoted:
                literal_args.append(t.value)
            elif isinstance(t, SingletonType) and not isinstance(t.value, (Sym,)):
                literal_args.append(t.value)
            else:
                folded = False
    if folded:
        try:
            result = fold(value, literal_args)
        except Exception:
            result = None
            folded = False
        if folded:
            if isinstance(result, str):
                return ConstStringType(result)
            if result is None:
                return _NIL
            return SingletonType(result)
    from repro.rtypes import parse_type

    return parse_type(fallback)


# -- numeric folding (§2.4 constant folding) -------------------------------------------

_NUM_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "**": lambda a, b: a ** b,
}


def _num_fold(i, recv, args, block):
    tself, t, op = _arg(args, 0), _arg(args, 1), _arg(args, 2)
    op_name = op.name if isinstance(op, Sym) else None
    if (isinstance(tself, SingletonType) and isinstance(t, SingletonType)
            and isinstance(tself.value, (int, float)) and isinstance(t.value, (int, float))
            and not isinstance(tself.value, bool) and not isinstance(t.value, bool)
            and op_name in _NUM_BINOPS):
        return SingletonType(_NUM_BINOPS[op_name](tself.value, t.value))
    left = tself.base_name if isinstance(tself, SingletonType) else getattr(tself, "name", "Integer")
    right = t.base_name if isinstance(t, SingletonType) else getattr(t, "name", "Integer")
    if "Float" in (left, right):
        return NominalType("Float")
    return NominalType(left if left in ("Integer", "Float") else "Integer")


def _num_div_fold(i, recv, args, block):
    tself, t = _arg(args, 0), _arg(args, 1)
    if (isinstance(tself, SingletonType) and isinstance(t, SingletonType)
            and isinstance(t.value, (int, float)) and t.value != 0
            and not isinstance(t.value, bool)):
        a, b = tself.value, t.value
        if isinstance(a, int) and isinstance(b, int):
            return SingletonType(a // b)
        return SingletonType(a / b)
    left = tself.base_name if isinstance(tself, SingletonType) else getattr(tself, "name", "Integer")
    right = t.base_name if isinstance(t, SingletonType) else getattr(t, "name", "Integer")
    if "Float" in (left, right):
        return NominalType("Float")
    return NominalType("Integer")


_NUM_CMPS = {
    "<": lambda a, b: a < b, ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b, ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b, "!=": lambda a, b: a != b,
}


def _num_cmp_fold(i, recv, args, block):
    tself, t, op = _arg(args, 0), _arg(args, 1), _arg(args, 2)
    op_name = op.name if isinstance(op, Sym) else None
    if (isinstance(tself, SingletonType) and isinstance(t, SingletonType)
            and isinstance(tself.value, (int, float)) and isinstance(t.value, (int, float))
            and op_name in _NUM_CMPS):
        return SingletonType(_NUM_CMPS[op_name](tself.value, t.value))
    return _BOOL


def _num_fold_unary(i, recv, args, block):
    tself, op = _arg(args, 0), _arg(args, 1)
    op_name = op.name if isinstance(op, Sym) else None
    folds = {
        "abs": abs, "succ": lambda v: v + 1, "next": lambda v: v + 1,
        "pred": lambda v: v - 1, "floor": lambda v: int(v // 1),
        "ceil": lambda v: int(-(-v // 1)), "to_i": int, "to_f": float,
        "zero?": lambda v: v == 0, "even?": lambda v: v % 2 == 0,
        "odd?": lambda v: v % 2 == 1, "positive?": lambda v: v > 0,
        "negative?": lambda v: v < 0, "-@": lambda v: -v,
    }
    if isinstance(tself, SingletonType) and isinstance(tself.value, (int, float)) \
            and not isinstance(tself.value, bool) and op_name in folds:
        return SingletonType(folds[op_name](tself.value))
    if op_name in ("zero?", "even?", "odd?", "positive?", "negative?"):
        return _BOOL
    if op_name in ("to_i", "floor", "ceil"):
        return NominalType("Integer")
    if op_name == "to_f":
        return NominalType("Float")
    base = tself.base_name if isinstance(tself, SingletonType) else getattr(tself, "name", "Integer")
    return NominalType(base if base in ("Integer", "Float") else "Integer")


# -- boolean folding (the λC Bool.∧ example) ----------------------------------------

def _bool_and_type(i, recv, args, block):
    tself, t = _arg(args, 0), _arg(args, 1)
    if isinstance(tself, SingletonType) and isinstance(t, SingletonType):
        if tself.value is True and t.value is True:
            return SingletonType(True)
        if tself.value is False or t.value is False:
            return SingletonType(False)
    return _BOOL


def _bool_or_type(i, recv, args, block):
    tself, t = _arg(args, 0), _arg(args, 1)
    if isinstance(tself, SingletonType) and isinstance(t, SingletonType):
        if tself.value is True or t.value is True:
            return SingletonType(True)
        if tself.value is False and t.value is False:
            return SingletonType(False)
    return _BOOL


# -- ORM helpers ------------------------------------------------------------------------

def _pluck_type(i, recv, args, block):
    tself, t = _arg(args, 0), _arg(args, 1)
    schema = _schema_of(i, tself)
    if isinstance(schema, FiniteHashType) and isinstance(t, SingletonType) \
            and isinstance(t.value, Sym):
        entry = schema.elts.get(t.value)
        if entry is None:
            _type_error(f"pluck of unknown column {t.to_s()}")
        return GenericType("Array", [entry])
    return GenericType("Array", [_OBJECT])


def _column_value_type(i, recv, args, block):
    tself, t = _arg(args, 0), _arg(args, 1)
    schema = _schema_of(i, tself)
    if isinstance(schema, FiniteHashType) and isinstance(t, SingletonType) \
            and isinstance(t.value, Sym):
        entry = schema.elts.get(t.value)
        if entry is not None:
            return entry
    return _OBJECT


def _model_instance_type(i, recv, args, block):
    model = _model_of(i, recv, args, block)
    return model


def _model_instance_or_nil(i, recv, args, block):
    model = _model_of(i, recv, args, block)
    return make_union([model, _NIL])


def _record_type(i, recv, args, block):
    """What one result of a query is: a model instance for ActiveRecord
    relations / model classes, a row hash for bare Sequel datasets."""
    tself = _arg(args, 0)
    if isinstance(tself, SingletonType) and isinstance(tself.value, ClassRef):
        return NominalType(tself.value.name)
    if isinstance(tself, GenericType) and tself.base == "Table":
        if len(tself.params) >= 2 and isinstance(tself.params[1], NominalType) \
                and tself.params[1].name != "Object":
            return tself.params[1]
        if tself.params:
            return tself.params[0]
    return _OBJECT


def _record_or_nil(i, recv, args, block):
    return make_union([_record_type(i, recv, args, block), _NIL])


def _records_array_type(i, recv, args, block):
    return GenericType("Array", [_record_type(i, recv, args, block)])


def _dataset_type(i, recv, args, block):
    """``DB[:table]``: the Table type of a bare Sequel dataset."""
    t = _arg(args, 0)
    if not isinstance(t, SingletonType):
        return NominalType("Table")
    table = _table_name_for(t.value)
    if i.db is None or i.db.schema_of(table) is None:
        _type_error(f"no such table '{table}'")
    return i.db.schema_of(table).table_type()


def _record_row_type(i, recv, args, block):
    """Sequel datasets yield row hashes typed by the schema."""
    tself = _arg(args, 0)
    schema = _schema_of(i, tself)
    return schema


_NATIVE_HELPERS = {
    "db_table_type": _db_table_type,
    "fallback_hash_type": _fallback_hash_type,
    "optionalize": _optionalize,
    "model_of": _model_of,
    "check_association": _check_association,
    "sql_typecheck": _sql_typecheck,
    "where_arg_type": _where_arg_type,
    "hash_access_type": _hash_access_type,
    "hash_fetch_type": _hash_fetch_type,
    "hash_value_type": _hash_value_type,
    "hash_key_type": _hash_key_type,
    "hash_keys_type": _hash_keys_type,
    "hash_values_type": _hash_values_type,
    "hash_merge_type": _hash_merge_type,
    "hash_size_type": _hash_size_type,
    "hash_to_a_type": _hash_to_a_type,
    "tuple_index_type": _tuple_index_type,
    "tuple_first_type": _tuple_first_type,
    "tuple_last_type": _tuple_last_type,
    "tuple_length_type": _tuple_length_type,
    "tuple_concat_type": _tuple_concat_type,
    "tuple_reverse_type": _tuple_reverse_type,
    "array_elem_type": _array_elem_type,
    "array_of_elem": _array_of_elem,
    "array_elem_or_nil": _array_elem_or_nil,
    "tuple_compact_type": _tuple_compact_type,
    "tuple_empty_type": _tuple_empty_type,
    "hash_empty_type": _hash_empty_type,
    "hash_has_key_type": _hash_has_key_type,
    "str_concat_type": _str_concat_type,
    "str_fold_unary": _str_fold_unary,
    "str_length_type": _str_length_type,
    "str_mult_type": _str_mult_type,
    "str_to_sym_type": _str_to_sym_type,
    "str_empty_type": _str_empty_type,
    "str_to_i_type": _str_to_i_type,
    "str_fold_call": _str_fold_call,
    "num_fold": _num_fold,
    "num_div_fold": _num_div_fold,
    "num_cmp_fold": _num_cmp_fold,
    "num_fold_unary": _num_fold_unary,
    "bool_and_type": _bool_and_type,
    "bool_or_type": _bool_or_type,
    "pluck_type": _pluck_type,
    "column_value_type": _column_value_type,
    "model_instance_type": _model_instance_type,
    "model_instance_or_nil": _model_instance_or_nil,
    "record_row_type": _record_row_type,
    "record_type": _record_type,
    "record_or_nil": _record_or_nil,
    "records_array_type": _records_array_type,
    "dataset_type": _dataset_type,
}
