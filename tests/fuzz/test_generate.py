"""Generator determinism and schema-model/step consistency."""

import pytest

from repro.apps import app_for_label
from repro.fuzz import (
    SchemaModel,
    Step,
    events_from_json,
    events_to_json,
    generate_steps,
)


def _fresh_model() -> SchemaModel:
    rdl = app_for_label("huginn").build(backend="memory")
    return SchemaModel.of_universe(rdl)


def test_same_seed_same_sequence():
    first = generate_steps(7, _fresh_model(), 40)
    second = generate_steps(7, _fresh_model(), 40)
    assert [s.to_json() for s in first] == [s.to_json() for s in second]


def test_different_seeds_diverge():
    a = generate_steps(0, _fresh_model(), 40)
    b = generate_steps(1, _fresh_model(), 40)
    assert [s.to_json() for s in a] != [s.to_json() for s in b]


def test_generated_steps_all_apply_in_order():
    events = generate_steps(3, _fresh_model(), 60)
    model = _fresh_model()
    for step in events:
        assert model.applies(step), f"inapplicable: {step.describe()}"
        model.apply(step)


def test_check_cadence_and_terminal_check():
    events = generate_steps(5, _fresh_model(), 30, check_every=4)
    assert events[-1].op == "check"
    gap = 0
    for step in events:
        if step.op == "check":
            gap = 0
        else:
            gap += 1
            assert gap <= 4


def test_json_round_trip():
    events = generate_steps(11, _fresh_model(), 30)
    replayed = events_from_json(events_to_json(events))
    assert [s.to_json() for s in replayed] == [s.to_json() for s in events]


def test_model_skips_inapplicable_steps():
    model = _fresh_model()
    assert not model.applies(Step(op="insert", table="no_such_table",
                                  values={"x": 1}))
    assert not model.applies(Step(op="drop_column", table="agents",
                                  column="id"))
    # subject-app tables may evolve column-wise but never vanish
    assert not model.applies(Step(op="drop_table", table="agents"))
    assert model.applies(Step(op="check"))


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_storm_mixes_migrations_and_probes(seed):
    events = generate_steps(seed, _fresh_model(), 80)
    ops = {step.op for step in events}
    assert "check" in ops
    assert ops & {"create_table", "add_column", "drop_column",
                  "rename_column"}
    assert ops & {"insert", "update", "delete"}
