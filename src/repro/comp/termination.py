"""Termination and purity checking for type-level code (§4, Fig. 6).

CompRDL guarantees type checking terminates by restricting comp type code:

* no ``while``/``until`` loops;
* calls must target methods whose termination effect is ``:+``;
* iterator methods (``:blockdep``) terminate only if their block is *pure*
  (mutating the collection being iterated could diverge) and itself
  terminates;
* recursion in type-level code is assumed absent (as in the paper; a cycle
  encountered during the recursive body check is treated as the paper's
  assumption rather than an error).

Purity: a pure method may not assign instance/class/global variables or
call impure methods.
"""

from __future__ import annotations

from repro import obs
from repro.lang import ast_nodes as ast
from repro.typecheck.errors import TerminationError


class TerminationChecker:
    """Checks mini-Ruby ASTs used at the type level."""

    def __init__(self, interp, registry):
        self.interp = interp
        self.registry = registry
        self._verified: set[str] = set()
        self._in_progress: set[str] = set()

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def check_comp_code(self, program, description: str) -> None:
        """Check a comp expression's AST for guaranteed termination."""
        for node in program.body:
            self._check_terminates(node, description)

    def check_helper(self, class_name: str, method_name: str) -> None:
        """Check a type-level helper method's body (recursively)."""
        key = f"{class_name}#{method_name}"
        if key in self._verified:
            return
        if key in self._in_progress:
            # A helper-call cycle: the body under verification calls (possibly
            # transitively) back into itself.  The paper assumes type-level
            # code is recursion-free, so the cycle is *assumed* terminating
            # rather than rejected — but that assumption is worth surfacing:
            # it is the one place the termination check is optimistic.
            obs.event("termination.cycle_assumed", label=key)
            obs.bump("termination.cycle_assumed")
            return
        body_node = self.registry.lookup_body(class_name, method_name, False, self.interp) \
            or self.registry.lookup_body(class_name, method_name, True, self.interp)
        if body_node is None:
            # native helper: trust its declared effect (checked by caller)
            self._verified.add(key)
            return
        self._in_progress.add(key)
        try:
            for stmt in body_node.body:
                self._check_terminates(stmt, key)
        finally:
            self._in_progress.discard(key)
        self._verified.add(key)

    # ------------------------------------------------------------------
    # termination walk
    # ------------------------------------------------------------------
    def _check_terminates(self, node, context: str) -> None:
        if node is None or isinstance(node, (str, int, float)):
            return
        if isinstance(node, ast.While):
            raise TerminationError(
                f"type-level code may not contain loops ({context})",
                node.line, col=node.col,
            )
        if isinstance(node, ast.MethodCall):
            self._check_call(node, context)
            return
        if isinstance(node, (ast.IndexAssign, ast.AttrAssign)):
            self._each_child(node, lambda child: self._check_terminates(child, context))
            return
        self._each_child(node, lambda child: self._check_terminates(child, context))

    def _check_call(self, node: ast.MethodCall, context: str) -> None:
        if node.receiver is not None:
            self._check_terminates(node.receiver, context)
        for arg in node.args:
            self._check_terminates(arg, context)

        effect = self._effect_for(node)
        if effect.terminates == "-":
            raise TerminationError(
                f"type-level code calls '{node.name}', which may not terminate "
                f"({context})", node.line, col=node.col,
            )
        if effect.terminates == "blockdep":
            if node.block is not None:
                if not self.is_pure_block(node.block):
                    raise TerminationError(
                        f"iterator '{node.name}' in type-level code takes an "
                        f"impure block ({context})", node.line, col=node.col,
                    )
                for stmt in node.block.body:
                    self._check_terminates(stmt, context)
            # block-less iterator calls return eagerly in our runtime
        elif node.block is not None:
            for stmt in node.block.body:
                self._check_terminates(stmt, context)

        # user-defined helpers: verify their bodies too
        if node.receiver is None:
            body = self.registry.lookup_body("Object", node.name, False, self.interp)
            if body is not None:
                self.check_helper("Object", node.name)

    def _effect_for(self, node: ast.MethodCall):
        """Best-effort effect lookup: receiver class is unknown statically at
        the type level, so consult annotations by method name, then the
        default table."""
        from repro.comp.effects import default_effect
        from repro.typecheck.registry import EffectInfo

        # self-call to a helper defined on Object
        if node.receiver is None:
            effect = self.registry.effect_of("Object", node.name, False, self.interp)
            if self.registry.lookup_body("Object", node.name, False, self.interp) is not None:
                # user helper bodies are verified recursively; treat the call
                # as terminating if annotated '+' or unannotated-but-verified
                if effect.terminates == "-":
                    annotated = any(
                        key.method_name == node.name and any(a.terminates for a in anns)
                        for key, anns in self.registry.method_annotations.items()
                    )
                    if annotated:
                        return effect
                    return EffectInfo("+", effect.pure)
            return effect

    # receiver calls: look for any annotation naming this method
        for key, annotations in self.registry.method_annotations.items():
            if key.method_name == node.name:
                terminates = next((a.terminates for a in annotations if a.terminates), None)
                pure = next((a.pure for a in annotations if a.pure), None)
                if terminates or pure:
                    return EffectInfo(terminates or "+", pure or "+")
        if isinstance(node.receiver, ast.ConstRef):
            return default_effect(node.receiver.name, node.name)
        return default_effect("Object", node.name)

    # ------------------------------------------------------------------
    # purity
    # ------------------------------------------------------------------
    def is_pure_block(self, block: ast.BlockNode) -> bool:
        """A pure block writes no ivar/gvar and calls no impure methods."""
        return all(self._is_pure(stmt) for stmt in block.body)

    def _is_pure(self, node) -> bool:
        if node is None or isinstance(node, (str, int, float)):
            return True
        if isinstance(node, ast.Assign):
            if isinstance(node.target, (ast.IVar, ast.GVar)):
                return False
            return self._is_pure(node.value)
        if isinstance(node, (ast.IndexAssign, ast.AttrAssign)):
            return False
        if isinstance(node, ast.MethodCall):
            effect = self._effect_for(node)
            if effect.pure == "-":
                return False
            children_pure = all(self._is_pure(a) for a in node.args)
            if node.receiver is not None:
                children_pure = children_pure and self._is_pure(node.receiver)
            if node.block is not None:
                children_pure = children_pure and self.is_pure_block(node.block)
            return children_pure
        result = True

        def visit(child):
            nonlocal result
            if not self._is_pure(child):
                result = False

        self._each_child(node, visit)
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _each_child(node, visit) -> None:
        for field_name in getattr(node, "__dataclass_fields__", {}):
            if field_name in ("line", "node_id"):
                continue
            value = getattr(node, field_name)
            if isinstance(value, ast.Node):
                visit(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.Node):
                        visit(item)
                    elif isinstance(item, tuple):
                        for part in item:
                            if isinstance(part, ast.Node):
                                visit(part)
