"""obs tests flip process-global tracing state; always restore it."""

import pytest

from repro import obs
from repro.obs import provenance
from repro.runtime.compile import reset_inline_cache_stats


@pytest.fixture(autouse=True)
def _obs_isolation(monkeypatch):
    # a REPRO_TRACE / REPRO_PROVENANCE in the environment would re-enable
    # the layers in spawned workers (and in _trace_begin) underneath the
    # disabled-mode tests
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_PROVENANCE", raising=False)
    was_enabled = obs.enabled()
    prov_enabled = provenance.enabled()
    obs.reset()
    provenance.reset()
    reset_inline_cache_stats()
    yield
    obs.reset()
    provenance.reset()
    reset_inline_cache_stats()
    obs.set_enabled(was_enabled)
    provenance.set_enabled(prov_enabled)
