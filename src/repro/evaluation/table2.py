"""Table 2: type checking results over the six subject programs.

For each benchmark this harness reproduces every column of the paper's
Table 2:

* **Meths / LoC** — methods type checked and their source size;
* **Extra Annots** — annotations on variables and on called-but-unchecked
  methods;
* **Casts** — ``type_cast``\\ s needed with comp types;
* **Casts (RDL)** — casts a programmer needs with plain RDL (comp types
  disabled; measured by the oracle cast-repair mode);
* **Time (s)** — median ± SIQR of type checking over ``runs`` repetitions
  (11 in the paper);
* **Test Time No Chk / w/Chk** — the app test suite without and with the
  inserted dynamic checks;
* **Errs** — genuine type errors found (the paper found 3: one in
  Code.org, two in Journey).

Run with ``python -m repro.evaluation.table2``.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field

from repro.apps import all_apps
from repro.apps.base import SubjectApp


@dataclass
class Table2Row:
    name: str
    methods: int = 0
    loc: int = 0
    extra_annots: int = 0
    casts: int = 0
    casts_rdl: int = 0
    check_median_s: float = 0.0
    check_siqr_s: float = 0.0
    test_no_chk_s: float = 0.0
    test_w_chk_s: float = 0.0
    errors: int = 0
    error_messages: list = field(default_factory=list)
    paper: dict = field(default_factory=dict)


def _median_siqr(samples: list[float]) -> tuple[float, float]:
    med = statistics.median(samples)
    ordered = sorted(samples)
    n = len(ordered)
    q1 = ordered[n // 4]
    q3 = ordered[(3 * n) // 4]
    return med, (q3 - q1) / 2


def measure_app(app: SubjectApp, runs: int = 11, test_reps: int = 20) -> Table2Row:
    """Measure one benchmark; mirrors §5.2's methodology."""
    row = Table2Row(name=app.name, paper=dict(app.paper))

    # -- comp-mode type checking (timed over `runs` repetitions) -----------
    samples = []
    report = None
    rdl = None
    for _ in range(runs):
        rdl = app.build()
        start = time.perf_counter()
        report = rdl.check(app.label)
        samples.append(time.perf_counter() - start)
    assert report is not None and rdl is not None
    row.check_median_s, row.check_siqr_s = _median_siqr(samples)
    row.methods = len(report.checked_methods)
    row.loc = app.source_loc()
    row.casts = report.casts_used
    row.errors = len(report.errors)
    row.error_messages = [str(e) for e in report.errors]
    # extra annotations: `type` directives in the app source without a
    # typecheck label, plus var_type annotations it registered
    row.extra_annots = _count_extra_annots(app)

    # -- plain-RDL cast counting -------------------------------------------
    known = {e.method for e in report.errors}
    rdl_mode = app.build(use_comp_types=False, repair_with_casts=True,
                         insert_checks=False)
    rdl_mode.config.known_errors = known
    rdl_report = rdl_mode.check(app.label)
    row.casts_rdl = rdl_report.casts_used + rdl_report.oracle_casts

    # -- dynamic check overhead ---------------------------------------------
    if app.test_suite:
        start = time.perf_counter()
        for _ in range(test_reps):
            rdl.run(app.test_suite, checks=False)
        row.test_no_chk_s = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(test_reps):
            rdl.run(app.test_suite, checks=True)
        row.test_w_chk_s = time.perf_counter() - start
    return row


def _count_extra_annots(app: SubjectApp) -> int:
    count = 0
    for line in app.source.splitlines():
        stripped = line.strip()
        if stripped.startswith("var_type "):
            count += 1
        elif stripped.startswith("type ") and "typecheck:" not in stripped:
            count += 1
    return count


def table2_rows(runs: int = 11, test_reps: int = 20) -> list[Table2Row]:
    return [measure_app(app, runs, test_reps) for app in all_apps()]


def render_table2(rows: list[Table2Row] | None = None, runs: int = 11) -> str:
    rows = rows if rows is not None else table2_rows(runs=runs)
    header = (f"{'Program':<11}{'Meths':>6}{'LoC':>6}{'Annots':>7}{'Casts':>6}"
              f"{'C(RDL)':>7}{'Time(s)':>10}{'NoChk(s)':>9}{'wChk(s)':>9}{'Errs':>5}")
    lines = ["Table 2: Type checking results", header, "-" * len(header)]
    totals = Table2Row(name="Total")
    for row in rows:
        lines.append(
            f"{row.name:<11}{row.methods:>6}{row.loc:>6}{row.extra_annots:>7}"
            f"{row.casts:>6}{row.casts_rdl:>7}"
            f"{row.check_median_s:>7.3f}±{row.check_siqr_s:<.2f}"
            f"{row.test_no_chk_s:>8.3f}{row.test_w_chk_s:>9.3f}{row.errors:>5}"
        )
        totals.methods += row.methods
        totals.loc += row.loc
        totals.extra_annots += row.extra_annots
        totals.casts += row.casts
        totals.casts_rdl += row.casts_rdl
        totals.check_median_s += row.check_median_s
        totals.test_no_chk_s += row.test_no_chk_s
        totals.test_w_chk_s += row.test_w_chk_s
        totals.errors += row.errors
    lines.append("-" * len(header))
    lines.append(
        f"{'Total':<11}{totals.methods:>6}{totals.loc:>6}{totals.extra_annots:>7}"
        f"{totals.casts:>6}{totals.casts_rdl:>7}"
        f"{totals.check_median_s:>7.3f}      "
        f"{totals.test_no_chk_s:>8.3f}{totals.test_w_chk_s:>9.3f}{totals.errors:>5}"
    )
    ratio = totals.casts_rdl / totals.casts if totals.casts else float("inf")
    overhead = ((totals.test_w_chk_s / totals.test_no_chk_s) - 1) * 100 \
        if totals.test_no_chk_s else 0.0
    lines.append("")
    lines.append(f"Cast reduction with comp types: {ratio:.2f}x fewer "
                 f"(paper: 4.75x)")
    lines.append(f"Dynamic check overhead: {overhead:+.1f}% (paper: ~1.6%)")
    lines.append(f"Errors found: {totals.errors} (paper: 3 — "
                 f"1 Code.org doc error, 2 Journey bugs)")
    return "\n".join(lines)


if __name__ == "__main__":
    print(render_table2())
