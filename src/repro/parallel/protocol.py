"""Picklable messages exchanged between the planner and worker processes.

Workers run in spawn-mode child processes, so everything crossing the
boundary must round-trip through pickle *and* reconstruct faithfully:
errors travel as plain ``(kind, message, line, method)`` tuples rather than
exception instances because :class:`StaticTypeError`'s constructor formats
its arguments (re-pickling the instance would re-format an already-formatted
message and lose the structured ``line``/``method`` fields).

Two vocabularies share this module:

* the **one-shot** vocabulary (:class:`ShardTask` → :class:`ShardResult`):
  a cold check, where the worker rebuilds each subject app pristine and
  checks a method slice — stateless, any process can serve any task;
* the **session** vocabulary (:class:`AttachUniverse` /
  :class:`SessionDelta` / :class:`CheckRequest` …): warm workers keep live
  label universes between rounds, receive schema-journal deltas and
  post-build load records instead of rebuilding, and re-check only dirty
  methods.  Session messages are routed to a *specific* worker process
  (state lives there), so they carry a ``session_id`` and the worker side
  is a dispatch loop (:func:`repro.parallel.worker.session_main`) rather
  than a pure function.

Schema deltas travel as :meth:`SchemaEvent.to_wire` tuples — the stable
encoding shared with any future socket transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.incremental.deps import MethodDeps
from repro.typecheck.errors import StaticTypeError, TerminationError
from repro.typecheck.registry import MethodKey

#: error-kind tags for the wire format
_ERROR_KINDS = {
    "static": StaticTypeError,
    "termination": TerminationError,
}


def encode_error(error: StaticTypeError) -> tuple[str, str, int, str, int]:
    kind = "termination" if isinstance(error, TerminationError) else "static"
    return (kind, error.message, error.line, error.method,
            getattr(error, "col", 0))


def decode_error(record: tuple) -> StaticTypeError:
    kind, message, line, method = record[:4]
    col = record[4] if len(record) > 4 else 0
    return _ERROR_KINDS.get(kind, StaticTypeError)(message, line, method, col)


@dataclass(frozen=True)
class MethodSpec:
    """One unit of checkable work: a method of a labelled subject app."""

    label: str
    class_name: str
    method_name: str
    static: bool = False

    def key(self) -> MethodKey:
        return MethodKey(self.class_name, self.method_name, self.static)

    @property
    def desc(self) -> str:
        return str(self.key())


@dataclass(frozen=True)
class ShardTask:
    """One worker assignment: an ordered slice of the fleet's methods.

    ``backend`` names the storage backend the worker must build its
    universes against (``None`` → the environment default).  Only the
    *name* crosses the process boundary — a live engine connection
    (sqlite3) is unpicklable by design; each worker opens its own.
    """

    shard_id: int
    specs: tuple[MethodSpec, ...]
    backend: str | None = None
    #: record obs spans worker-side and ship them back on the result
    trace: bool = False
    #: attribute comp-cache traffic per verdict worker-side (the ``prov``
    #: field on each MethodVerdict); False adds no payload at all
    provenance: bool = False
    #: labels to build into the worker's warm replica catalog before any
    #: checking (fleet priming): later shards reuse them in place and a
    #: session attach adopts them instead of rebuilding
    prebuild: tuple = ()

    @property
    def labels(self) -> tuple[str, ...]:
        seen: list[str] = []
        for spec in self.specs:
            if spec.label not in seen:
                seen.append(spec.label)
        return tuple(seen)


@dataclass
class MethodVerdict:
    """One method's result, exactly what the serial checker would record."""

    spec: MethodSpec
    desc: str
    errors: list[tuple[str, str, int, str]] = field(default_factory=list)
    casts_used: int = 0
    oracle_casts: int = 0
    deps: MethodDeps | None = None
    cost_s: float = 0.0
    #: worker-side provenance piggyback: ``(comp_hits, comp_misses)``
    #: attributed to this check, or None when provenance was off for the
    #: request (the protocol default — a disabled round ships no payload)
    prov: tuple | None = None

    def rebuild_errors(self) -> list[StaticTypeError]:
        return [decode_error(record) for record in self.errors]


@dataclass
class ShardResult:
    """Everything a worker sends back for one shard."""

    shard_id: int
    verdicts: list[MethodVerdict] = field(default_factory=list)
    build_s: dict[str, float] = field(default_factory=dict)   # label -> seconds
    db_versions: dict[str, int] = field(default_factory=dict)  # label -> generation
    check_s: float = 0.0      # wall time spent checking (worker-side)
    cpu_s: float = 0.0        # process CPU time for the whole shard
    pid: int = 0
    #: worker-recorded trace events (chrome dicts); () unless tracing
    spans: tuple = ()


# ---------------------------------------------------------------------------
# session vocabulary (warm workers)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AttachUniverse:
    """Build (or rebuild, pristine) live label universes in a worker.

    The session lifecycle's cold step: each label's subject app is built
    from scratch, exactly like a one-shot shard rebuild, but the universes
    then *stay alive* in the worker and subsequent :class:`SessionDelta`
    messages keep them converged with the engine's universe.  Re-attaching
    an existing session id replaces its replicas (crash recovery / journal
    gaps fall back to this).
    """

    session_id: str
    labels: tuple[str, ...]
    backend: str | None = None
    trace: bool = False


@dataclass
class AttachAck:
    """Attach reply: the replica generations the engine must verify."""

    session_id: str
    generations: dict[str, int] = field(default_factory=dict)  # label -> gen
    build_s: dict[str, float] = field(default_factory=dict)
    pid: int = 0
    spans: tuple = ()


@dataclass(frozen=True)
class SessionDelta:
    """Converge a session's live replicas with the engine's universe.

    ``events`` are :meth:`SchemaEvent.to_wire` tuples (the journal delta
    since the worker's last synced generation), replayed against every
    replica's live ``Database``; ``loads`` are post-pristine program
    sources (method definition records), re-executed against every
    replica's interpreter/registry.  After a successful delta the
    replica's generation equals the engine universe's — which the ack
    reports and the engine asserts.
    """

    session_id: str
    events: tuple[tuple, ...] = ()
    loads: tuple[str, ...] = ()
    trace: bool = False


@dataclass
class DeltaAck:
    """Delta reply: post-replay generations, for parity verification."""

    session_id: str
    generations: dict[str, int] = field(default_factory=dict)  # label -> gen
    events_applied: int = 0
    loads_applied: int = 0
    pid: int = 0
    spans: tuple = ()


@dataclass(frozen=True)
class CheckRequest:
    """Check a method slice against a session's live replicas.

    The warm counterpart of :class:`ShardTask`: no rebuild happens — the
    worker resolves each spec's label to its live replica and runs the
    same ``check_one`` loop, returning a :class:`ShardResult` (with empty
    ``build_s``, which is the whole point).
    """

    session_id: str
    shard_id: int
    specs: tuple[MethodSpec, ...] = ()
    trace: bool = False
    #: per-verdict provenance piggyback, exactly like ShardTask.provenance
    provenance: bool = False


@dataclass(frozen=True)
class DetachSession:
    """Drop one session's replicas (the worker process stays up)."""

    session_id: str


@dataclass
class DetachAck:
    session_id: str


@dataclass(frozen=True)
class Shutdown:
    """End the worker's dispatch loop; the process exits cleanly."""


@dataclass
class SessionError:
    """A request failed worker-side; the loop keeps serving.

    The engine decides what the failure means: a replay divergence bounds
    the delta (cold re-attach / serial fallback), an unknown session id
    means the worker restarted, anything else is a bug surfaced verbatim.
    """

    session_id: str
    request: str   # message class name
    error: str     # "ExceptionType: message"
