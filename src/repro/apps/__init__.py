"""The six subject programs of the paper's evaluation (Table 2).

Each module ports the *checked method patterns* of one benchmark — the
paper's §5.2 selection: JSON-hash handling for the API client libraries
(Wikipedia, Twitter), and database-query-heavy model methods for the Rails
apps (Discourse, Huginn, Code.org, Journey), including the three real bugs
the paper found (one documentation error in Code.org, two type errors in
Journey).
"""

from repro.apps.base import SubjectApp
from repro.apps.wikipedia import WIKIPEDIA
from repro.apps.twitter import TWITTER
from repro.apps.discourse import DISCOURSE
from repro.apps.huginn import HUGINN
from repro.apps.codeorg import CODEORG
from repro.apps.journey import JOURNEY


def all_apps() -> list[SubjectApp]:
    """The benchmarks in the paper's Table 2 order."""
    return [WIKIPEDIA, TWITTER, DISCOURSE, HUGINN, CODEORG, JOURNEY]


__all__ = ["SubjectApp", "all_apps", "WIKIPEDIA", "TWITTER", "DISCOURSE",
           "HUGINN", "CODEORG", "JOURNEY"]
