"""Comp type annotations for the Sequel DSL (paper: 27 definitions).

Covers both styles: ``DB[:users].where(...)`` datasets (rows are hashes
typed by the table schema) and ``Sequel::Model`` classes (rows are model
instances).  Dataset-building methods share the ``Table<{...}>`` typing
with ActiveRecord; ``record_type`` distinguishes the two result shapes.
"""

from __future__ import annotations

from repro.annotations.sigs import install_table

_TABLE = "«table_type_of(tself)»/Table"
_RECORD_OR_NIL = "«record_or_nil(tself)»/Object"
_COND = "«query_schema_type(tself)»"

SEQUEL_DATABASE_SIGS: dict[str, object] = {
    "[]": "(t<:Symbol) -> «dataset_type(t)»/Table",
    "tables": "() -> Array<Symbol>",
}

SEQUEL_DATASET_SIGS: dict[str, object] = {
    "exclude": f"(t<:{_COND}) -> {_TABLE}",
    "[]": f"(t<:{_COND}) -> {_RECORD_OR_NIL}",
    "get": "(t<:Symbol) -> «column_value_type(tself, t)»/Object or nil",
    "select_map": "(t<:Symbol) -> «pluck_type(tself, t)»/Array<Object>",
    "insert": f"(t<:{_COND}) -> Integer",
    "update": f"(t<:{_COND}) -> Integer",
    "delete": "() -> Integer",
    "paged_each": f"() {{ («record_type(tself)») -> Object }} -> {_TABLE}",
    "sum_of": "(t<:Symbol) -> «column_value_type(tself, t)»/Object",
    "max": "(t<:Symbol) -> «column_value_type(tself, t)»/Object or nil",
    "min": "(t<:Symbol) -> «column_value_type(tself, t)»/Object or nil",
}

# model-style query methods (same comp types, Sequel::Model receivers)
SEQUEL_MODEL_SIGS: dict[str, object] = {
    "where": f"(t<:«where_arg_type(tself, t, targs)», *targs<:Object) -> {_TABLE}",
    "exclude": f"(t<:{_COND}) -> {_TABLE}",
    "first": f"() -> {_RECORD_OR_NIL}",
    "last": f"() -> {_RECORD_OR_NIL}",
    "all": "() -> «records_array_type(tself)»/Array<Object>",
    "count": "() -> Integer",
    "order": f"(Object) -> {_TABLE}",
    "limit": f"(Integer) -> {_TABLE}",
    "each": f"() {{ («record_type(tself)») -> Object }} -> {_TABLE}",
    "map": "() { («record_type(tself)») -> t } -> Array<t>",
    "to_a": "() -> «records_array_type(tself)»/Array<Object>",
    "find": f"(t<:{_COND}) -> {_RECORD_OR_NIL}",
    "[]": f"(t<:{_COND}) -> {_RECORD_OR_NIL}",
    "create": f"(t<:{_COND}) -> «record_type(tself)»/Object",
    "insert": f"(t<:{_COND}) -> Integer",
    "dataset": f"() -> {_TABLE}",
}


def install(rdl) -> dict[str, int]:
    stats_db = install_table(rdl, "Sequel::Database", SEQUEL_DATABASE_SIGS)
    stats_ds = install_table(rdl, "Table", SEQUEL_DATASET_SIGS)
    stats_model = install_table(rdl, "Sequel::Model", SEQUEL_MODEL_SIGS, static=True)
    return {
        "comp_defs": stats_db["comp_defs"] + stats_ds["comp_defs"]
        + stats_model["comp_defs"],
        "loc": stats_db["loc"] + stats_ds["loc"] + stats_model["loc"],
    }
