"""Journey benchmark: survey web application (§5.2).

Mixes ActiveRecord and Sequel, like the real app.  Contains the paper's
two Journey bugs (§5.3, Errors = 2):

1. a method referencing the undefined constant ``Field`` (a namespace
   change had moved it to ``Question::Field``);
2. a hash argument ``{ :action => prompt, ... }`` where ``prompt`` was
   meant to be a string/symbol but is actually a *method call* returning
   an array.
"""

from repro.apps.base import SubjectApp
from repro.db.schema import Database

_SOURCE = '''
class Question < ActiveRecord::Base
  FIELD_KINDS = ["text", "choice", "scale"]

  type "(Integer) -> Array<String>", typecheck: :journey
  def self.fields_for_survey(sid)
    Question.where({ survey_id: sid }).pluck(:field)
  end

  type "(Integer) -> Integer", typecheck: :journey
  def self.required_count(sid)
    Question.where({ survey_id: sid, required: true }).count
  end

  # BUG 1 (found by CompRDL, §5.3): Field moved to Question::Field during a
  # namespace change; this method still references the old constant
  type "() -> Integer", typecheck: :journey
  def self.legacy_field_count
    Field.all.count
  end

  type "() -> Array<String>", typecheck: :journey
  def self.prompt
    Question.order({ position: :asc }).pluck(:field)
  end

  # BUG 2 (found by CompRDL, §5.3): prompt here is a *call* to the method
  # above (an Array), not the intended string — missing quotes/colon
  type "() -> Hash<Symbol, Object>", typecheck: :journey
  def self.edit_link
    link_to({ :action => prompt, :controller => "questions" })
  end

  type "({ action: String or Symbol, controller: String }) -> Hash<Symbol, Object>"
  def self.link_to(options)
    { href: "/app", options: options }
  end

  type "() -> %bool", typecheck: :journey
  def required_field?
    required
  end

  type "() -> String", typecheck: :journey
  def label
    field.capitalize
  end
end

class Survey < ActiveRecord::Base
  has_many :questions
  has_many :responses
  has_many :pages

  type "(String) -> Survey or nil", typecheck: :journey
  def self.by_title(survey_title)
    Survey.find_by({ title: survey_title })
  end

  type "() -> Array<String>", typecheck: :journey
  def self.published_titles
    Survey.where({ published: true }).pluck(:title)
  end

  type "() -> Integer", typecheck: :journey
  def self.draft_count
    Survey.where({ published: false }).count
  end

  type "(Integer) -> %bool", typecheck: :journey
  def self.has_pages?(sid)
    Survey.joins(:pages).exists?({ id: sid })
  end

  type "() -> String", typecheck: :journey
  def display_title
    title.strip
  end
end

class Response < ActiveRecord::Base
  type "(Integer) -> Integer", typecheck: :journey
  def self.completed_count(sid)
    Response.where({ survey_id: sid, completed: true }).count
  end

  type "(Integer) -> %bool", typecheck: :journey
  def self.any_for_survey?(sid)
    Response.exists?({ survey_id: sid })
  end
end

class Reporting
  # Sequel dataset reporting queries
  type "(Integer) -> Array<String>", typecheck: :journey
  def self.answer_values(rid)
    DB[:answers].where({ response_id: rid }).select_map(:value)
  end

  type "(Integer) -> Integer", typecheck: :journey
  def self.answer_count(qid)
    DB[:answers].where({ question_id: qid }).count
  end

  type "() -> Integer", typecheck: :journey
  def self.total_answers
    DB[:answers].count
  end

  type "(Integer, Integer, String) -> Integer", typecheck: :journey
  def self.record_answer(rid, qid, text)
    DB[:answers].insert({ response_id: rid, question_id: qid, value: text })
  end

  type "(Integer) -> { id: Integer, response_id: Integer, question_id: Integer, value: String } or nil", typecheck: :journey
  def self.first_answer_for(qid)
    DB[:answers][{ question_id: qid }]
  end

  type "() -> Array<Integer>", typecheck: :journey
  def self.page_positions
    DB[:pages].select_map(:position)
  end
end
'''

_TESTS = '''
out = []
out << Question.fields_for_survey(1).length
out << Question.required_count(1)
out << Question.prompt.length
q = Question.find(1)
out << q.required_field?
out << q.label
out << Survey.by_title("Customer Satisfaction").id
out << Survey.published_titles.length
out << Survey.draft_count
out << Survey.has_pages?(1)
out << Response.completed_count(1)
out << Response.any_for_survey?(1)
out << Reporting.answer_values(1).length
out << Reporting.answer_count(1)
out << Reporting.total_answers
out << Reporting.record_answer(1, 1, "yes")
out << Reporting.first_answer_for(1)
out << Reporting.page_positions.length
out.length
'''


def _setup(db: Database) -> None:
    db.create_table("surveys", title="string", user_id="integer",
                    published="boolean")
    db.create_table("questions", survey_id="integer", field="string",
                    position="integer", required="boolean")
    db.create_table("pages", survey_id="integer", position="integer")
    db.create_table("responses", survey_id="integer", completed="boolean")
    db.create_table("answers", response_id="integer", question_id="integer",
                    value="string")
    db.declare_association("surveys", "questions")
    db.declare_association("surveys", "responses")
    db.declare_association("surveys", "pages")
    db.declare_association("responses", "answers")
    db.insert("surveys", {"title": "Customer Satisfaction", "user_id": 1,
                          "published": True})
    db.insert("surveys", {"title": "Draft Poll", "user_id": 1,
                          "published": False})
    db.insert("questions", {"survey_id": 1, "field": "overall", "position": 1,
                            "required": True})
    db.insert("questions", {"survey_id": 1, "field": "comments", "position": 2,
                            "required": False})
    db.insert("pages", {"survey_id": 1, "position": 1})
    db.insert("responses", {"survey_id": 1, "completed": True})
    db.insert("answers", {"response_id": 1, "question_id": 1, "value": "good"})


JOURNEY = SubjectApp(
    name="Journey",
    label="journey",
    source=_SOURCE,
    setup_db=_setup,
    test_suite=_TESTS,
    expected_errors=2,
    paper={"methods": 21, "loc": 419, "casts": 14, "casts_rdl": 59, "errors": 2},
)
