"""An in-memory relational database substrate.

The paper's headline application is typing database queries: comp types look
up table schemas (``RDL.db_schema``) to compute precise query types (§2.1).
This package provides the schemas, rows, and query engine that the
ActiveRecord-like and Sequel-like DSLs (:mod:`repro.orm`) and the SQL type
checker (:mod:`repro.sqltc`) operate on.
"""

from repro.db.schema import Column, Database, InvalidRowIdError, TableSchema
from repro.db.engine import QueryEngine
from repro.db.backends import (
    MemoryBackend,
    SqliteBackend,
    StorageBackend,
    UnknownBackendError,
    backend_for_name,
)

__all__ = [
    "Column",
    "Database",
    "InvalidRowIdError",
    "MemoryBackend",
    "QueryEngine",
    "SqliteBackend",
    "StorageBackend",
    "TableSchema",
    "UnknownBackendError",
    "backend_for_name",
]
