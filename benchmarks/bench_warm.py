"""Benchmark: warm session recheck vs cold-fleet rounds after migrations.

The workload is the long-running-service loop the warm sessions exist for:
a subject app is checked once, then a schema migration lands and the
service re-verifies.  Two ways to run that round:

* **cold fleet** — what the fleet did before sessions: every round, worker
  processes rebuild the app from scratch and re-check *every* method
  (``ParallelCheckEngine.check_labels``).
* **warm recheck** — session workers keep live replicas; each round ships
  only the journal delta and re-checks only the dirty methods
  (``CompRDL.recheck_dirty(workers=N)``).

Measurements per round, aggregated over the table-backed subject apps:

* **wall** — what this 1-CPU container observes (recorded honestly; with
  fewer cores than workers the OS serializes the fleet either way);
* **per-shard CPU critical path** — the slowest shard's process CPU time,
  i.e. the projected wall on a machine with >= N free cores (same
  projection as ``bench_parallel.py``).  This is the gated metric: a warm
  round re-checks a dirty subset with zero rebuilds, so its critical path
  must beat the cold fleet's.
* **parity** — every warm report is asserted verdict-for-verdict identical
  to a serial-incremental twin that received the same migrations.

Run: ``PYTHONPATH=src python benchmarks/bench_warm.py
[--rounds N] [--workers N] [--json PATH] [--quick]``
(``BENCH_QUICK=1`` implies ``--quick``).
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.apps import all_apps
from repro.parallel import ParallelCheckEngine

DEFAULT_ROUNDS = 6
QUICK_ROUNDS = 2
DEFAULT_WORKERS = 4
RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results",
                            "bench_warm.json")
PROBE_COLUMN = "bench_warm_probe"


def _parity_key(report) -> tuple:
    return (
        tuple(report.checked_methods),
        tuple(str(e) for e in report.errors),
        report.casts_used,
        report.oracle_casts,
    )


def _migration_table(rdl) -> str | None:
    """The checked table with the widest method fanout (the migration that
    dirties the most verdicts — the interesting re-check)."""
    fanout = {table: count
              for table, count in rdl.incremental.table_fanout().items()
              if table in rdl.db.tables}
    if not fanout:
        return next(iter(rdl.db.tables), None)
    return max(sorted(fanout), key=lambda table: fanout[table])


def _toggle_probe(db, table: str, round_no: int) -> None:
    if round_no % 2 == 0:
        db.add_column(table, PROBE_COLUMN, "string")
    else:
        db.drop_column(table, PROBE_COLUMN)


def _measure_setup(rdl, twin, table: str, column: str, workers: int,
                   label: str) -> float:
    """Wall time of the first warm round after a migration — the attach +
    delta + dirty re-check that is the session setup cost.  Parity against
    the serial twin is asserted outside the measured window."""
    rdl.db.add_column(table, column, "string")
    twin.db.add_column(table, column, "string")
    setup_start = time.perf_counter()
    report = rdl.recheck_dirty(workers=workers)
    setup_s = time.perf_counter() - setup_start
    assert _parity_key(report) == _parity_key(twin.recheck_dirty()), \
        f"warm setup parity ({label})"
    return setup_s


def bench_app(app, rounds: int, workers: int) -> dict | None:
    """Cold-fleet vs warm-session rounds for one subject app."""
    with ParallelCheckEngine(workers=workers) as engine:
        # -- cold fleet baseline: rebuild + full re-check every round
        engine.prime([app.label])
        cold_wall = 0.0
        cold_cpu_path = 0.0
        cold_cpu_total = 0.0
        for _ in range(rounds):
            run = engine.check_labels([app.label])
            cold_wall += run.wall_s
            cold_cpu_path += run.critical_path_s + run.plan_s
            cold_cpu_total += run.worker_cpu_s

        # -- warm sessions: one build, then delta + dirty-subset rounds
        warm = app.build()
        warm.check_all(app.label)
        twin = app.build()
        twin.check_all(app.label)
        table = _migration_table(warm)
        if table is None:
            return None  # nothing to migrate (table-less API-client app)

        # unseeded setup: a fresh fleet whose session workers hold no
        # replicas — every attach is a full per-worker rebuild (what warm
        # setup always cost before shared catalogs)
        unseeded = app.build()
        unseeded.check_all(app.label)
        unseeded_twin = app.build()
        unseeded_twin.check_all(app.label)
        warm_setup_unseeded_s = _measure_setup(
            unseeded, unseeded_twin, table, "bench_warm_setup", workers,
            app.label)
        unseeded.shutdown_warm()

        # seeded setup: adopt the cold fleet above — its session workers
        # already hold pristine replicas in their warm catalogs (prime
        # prebuilt them, the cold rounds reused them), so the attach adopts
        # instead of rebuilding
        warm.adopt_warm_engine(engine)
        warm_setup_s = _measure_setup(
            warm, twin, table, "bench_warm_seeded", workers, app.label)

        warm_wall = 0.0
        warm_cpu_path = 0.0
        warm_cpu_total = 0.0
        methods_rechecked = 0
        remote_rounds = 0
        for round_no in range(rounds):
            _toggle_probe(warm.db, table, round_no)
            _toggle_probe(twin.db, table, round_no)
            wall_start = time.perf_counter()
            report = warm.recheck_dirty(workers=workers)
            warm_wall += time.perf_counter() - wall_start
            assert _parity_key(report) == _parity_key(twin.recheck_dirty()), (
                f"warm verdicts diverged from serial incremental for "
                f"{app.label} at round {round_no}")
            run = warm.warm_engine.last_warm_run
            warm_cpu_path += run.critical_path_s + run.plan_s + run.sync_s
            warm_cpu_total += run.worker_cpu_s
            methods_rechecked += run.methods
            remote_rounds += 1 if run.remote else 0
        total_methods = len(warm.incremental.keys_for([app.label]))
        # stable-key counters for the artifact (same keys as
        # metrics_snapshot)
        stats = warm.incremental_stats.snapshot()
        warm.shutdown_warm()  # detaches; the `with` closes the fleet

    setup_drop = (1.0 - warm_setup_s / warm_setup_unseeded_s
                  if warm_setup_unseeded_s else 0.0)
    return {
        "label": app.label,
        "stats": stats,
        "migration_table": table,
        "methods_total": total_methods,
        "methods_rechecked_per_round": methods_rechecked / rounds,
        "remote_rounds": remote_rounds,
        "warm_setup_s": round(warm_setup_s, 4),
        "warm_setup_unseeded_s": round(warm_setup_unseeded_s, 4),
        "warm_setup_drop": round(setup_drop, 4),
        "cold": {
            "wall_per_round_s": round(cold_wall / rounds, 4),
            "cpu_critical_path_per_round_s": round(cold_cpu_path / rounds, 4),
            "worker_cpu_per_round_s": round(cold_cpu_total / rounds, 4),
        },
        "warm": {
            "wall_per_round_s": round(warm_wall / rounds, 4),
            "cpu_critical_path_per_round_s": round(warm_cpu_path / rounds, 4),
            "worker_cpu_per_round_s": round(warm_cpu_total / rounds, 4),
        },
        "parity": True,
    }


def run_benchmark(rounds: int, workers: int) -> dict:
    apps = [bench_app(app, rounds, workers) for app in all_apps()]
    apps = [entry for entry in apps if entry is not None]
    cold_path = sum(a["cold"]["cpu_critical_path_per_round_s"] for a in apps)
    warm_path = sum(a["warm"]["cpu_critical_path_per_round_s"] for a in apps)
    cold_wall = sum(a["cold"]["wall_per_round_s"] for a in apps)
    warm_wall = sum(a["warm"]["wall_per_round_s"] for a in apps)
    setup_seeded = sum(a["warm_setup_s"] for a in apps)
    setup_unseeded = sum(a["warm_setup_unseeded_s"] for a in apps)
    setup_drop = (1.0 - setup_seeded / setup_unseeded
                  if setup_unseeded else 0.0)
    cores = os.cpu_count() or 1
    return {
        "benchmark": "warm_universe_sessions",
        "workload": (
            "per-app migrate -> re-verify rounds; cold fleet rebuilds and "
            "re-checks everything, warm sessions replay the journal delta "
            "and re-check only dirty methods"
        ),
        "rounds": rounds,
        "workers": workers,
        "cpu_count": cores,
        "apps": apps,
        "cold_cpu_critical_path_per_round_s": round(cold_path, 4),
        "warm_cpu_critical_path_per_round_s": round(warm_path, 4),
        "cold_wall_per_round_s": round(cold_wall, 4),
        "warm_wall_per_round_s": round(warm_wall, 4),
        "speedup_cpu_critical_path": round(cold_path / warm_path, 2)
        if warm_path else float("inf"),
        "speedup_wall": round(cold_wall / warm_wall, 2)
        if warm_wall else float("inf"),
        "remote_rounds": sum(a["remote_rounds"] for a in apps),
        "parity": all(a["parity"] for a in apps),
        "warm_setup_seeded_s": round(setup_seeded, 4),
        "warm_setup_unseeded_s": round(setup_unseeded, 4),
        "warm_setup_drop": round(setup_drop, 4),
        "pass": warm_path < cold_path and setup_drop >= 0.30,
        "pass_criterion": (
            "warm per-shard CPU critical path per round < cold fleet's "
            "(machine-independent: process CPU time, not wall; this "
            f"container has {cores} core(s), so wall time is recorded "
            "honestly but not gated), every warm report asserted "
            "verdict-for-verdict identical to the serial incremental twin, "
            "and first-round warm setup wall >= 30% lower when the attach "
            "adopts the cold fleet's shared replica catalogs "
            "(warm_setup_drop >= 0.30)"
        ),
    }


def main() -> int:
    cli = argparse.ArgumentParser(description=__doc__)
    cli.add_argument("--rounds", type=int, default=None)
    cli.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    cli.add_argument("--json", type=str, default=RESULTS_PATH,
                     help=f"where to write results (default {RESULTS_PATH})")
    cli.add_argument("--quick", action="store_true",
                     help="small iteration counts (CI smoke mode)")
    options = cli.parse_args()
    quick = options.quick or bool(os.environ.get("BENCH_QUICK"))
    rounds = options.rounds or (QUICK_ROUNDS if quick else DEFAULT_ROUNDS)

    results = run_benchmark(rounds, options.workers)
    results["quick_mode"] = quick

    header = (f"{'app':<12} {'methods':>8} {'dirty/round':>12} "
              f"{'cold cpu (ms)':>14} {'warm cpu (ms)':>14} {'warm wall (ms)':>15}")
    print(f"workload: migrate -> re-verify x {rounds} rounds at "
          f"{options.workers} workers (cpu_count={results['cpu_count']})")
    print(header)
    print("-" * len(header))
    for entry in results["apps"]:
        print(f"{entry['label']:<12} {entry['methods_total']:>8} "
              f"{entry['methods_rechecked_per_round']:>12.1f} "
              f"{entry['cold']['cpu_critical_path_per_round_s'] * 1e3:>14.1f} "
              f"{entry['warm']['cpu_critical_path_per_round_s'] * 1e3:>14.1f} "
              f"{entry['warm']['wall_per_round_s'] * 1e3:>15.1f}")
    print("-" * len(header))
    print(f"per-round CPU critical path: cold "
          f"{results['cold_cpu_critical_path_per_round_s'] * 1e3:.1f}ms vs warm "
          f"{results['warm_cpu_critical_path_per_round_s'] * 1e3:.1f}ms "
          f"({results['speedup_cpu_critical_path']:.2f}x); wall "
          f"{results['cold_wall_per_round_s'] * 1e3:.1f}ms vs "
          f"{results['warm_wall_per_round_s'] * 1e3:.1f}ms "
          f"({results['speedup_wall']:.2f}x) — parity held every round")
    print(f"warm setup (first round after a migration): unseeded "
          f"{results['warm_setup_unseeded_s'] * 1e3:.1f}ms vs seeded "
          f"{results['warm_setup_seeded_s'] * 1e3:.1f}ms "
          f"({results['warm_setup_drop'] * 100:.1f}% drop via shared "
          f"catalogs)")

    os.makedirs(os.path.dirname(os.path.abspath(options.json)), exist_ok=True)
    with open(options.json, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"results written to {options.json}")

    if not results["pass"]:
        if quick:
            # quick mode is the CI smoke step: it records the numbers for
            # the artifact but never gates the build on a perf threshold a
            # noisy 2-round sample could flip (verdict parity, asserted
            # above every round, still gates)
            print("NOTE: warm recheck did not beat the cold fleet on "
                  "per-shard CPU this sample — recorded, not gated in "
                  "quick mode")
            return 0
        print("FAIL: warm recheck did not beat the cold fleet on per-shard "
              "CPU critical path")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
