"""SQL subset: parser, type checker (Fig. 3), and evaluator tests."""

import pytest

from repro import Database
from repro.sqltc import (
    SqlParseError,
    SqlTypeError,
    check_fragment,
    eval_where_fragment,
    parse_query,
    parse_where_fragment,
    wrap_fragment,
)


@pytest.fixture
def db():
    d = Database()
    d.create_table("posts", topic_id="integer", raw="string")
    d.create_table("topics", title="string", views="integer")
    d.create_table("topic_allowed_groups", group_id="integer",
                   topic_id="integer")
    d.insert("topics", {"title": "welcome", "views": 10})
    d.insert("posts", {"topic_id": 1, "raw": "hi"})
    d.insert("topic_allowed_groups", {"group_id": 7, "topic_id": 1})
    return d


class TestParser:
    def test_full_query(self):
        q = parse_query("SELECT * FROM posts INNER JOIN topics ON a.id = b.a_id "
                        "WHERE topics.title = 'x'")
        assert q.table == "posts"
        assert q.joins[0].table == "topics"

    def test_fragment(self):
        cond = parse_where_fragment("title = ? AND views > 3")
        assert cond is not None

    def test_in_subquery(self):
        cond = parse_where_fragment(
            "topic_id IN (SELECT topic_id FROM topic_allowed_groups WHERE group_id = ?)")
        assert cond.subquery.table == "topic_allowed_groups"

    def test_is_null(self):
        cond = parse_where_fragment("title IS NOT NULL")
        assert cond.negated

    def test_bad_sql_rejected(self):
        with pytest.raises(SqlParseError):
            parse_where_fragment("SELECT FROM WHERE")

    def test_wrap_fragment(self):
        sql = wrap_fragment("title = 'x'", ["posts", "topics"])
        assert sql.startswith("SELECT * FROM posts INNER JOIN topics")
        parse_query(sql)  # the artificial query must parse (§2.3)


class TestChecker:
    def test_fig3_bug_detected(self, db):
        with pytest.raises(SqlTypeError) as err:
            check_fragment(db, ["posts", "topics"],
                           "topics.title IN (SELECT topic_id FROM "
                           "topic_allowed_groups WHERE group_id = ?)",
                           ["integer"])
        assert "topics.title" in str(err.value)

    def test_fixed_query_ok(self, db):
        check_fragment(db, ["posts", "topics"],
                       "posts.topic_id IN (SELECT topic_id FROM "
                       "topic_allowed_groups WHERE group_id = ?)",
                       ["integer"])

    def test_unknown_column(self, db):
        with pytest.raises(SqlTypeError):
            check_fragment(db, ["posts"], "missing_col = 3", [])

    def test_unknown_table(self, db):
        with pytest.raises(SqlTypeError):
            check_fragment(db, ["posts"], "ghosts.name = 'x'", [])

    def test_placeholder_kind_mismatch(self, db):
        with pytest.raises(SqlTypeError):
            check_fragment(db, ["posts"], "topic_id = ?", ["string"])

    def test_missing_placeholder_arg(self, db):
        with pytest.raises(SqlTypeError):
            check_fragment(db, ["posts"], "topic_id = ?", [])

    def test_boolean_ordering_rejected(self, db):
        db.add_column("posts", "deleted", "boolean")
        with pytest.raises(SqlTypeError):
            check_fragment(db, ["posts"], "deleted > true", [])

    def test_unqualified_column_resolution(self, db):
        check_fragment(db, ["posts", "topics"], "views > 3", [])


class TestEvaluator:
    def test_simple_comparison(self, db):
        row = db.all_rows("topics")[0]
        assert eval_where_fragment(db, "topics", [], "views > 3", (), row)
        assert not eval_where_fragment(db, "topics", [], "views > 30", (), row)

    def test_placeholder(self, db):
        row = db.all_rows("topics")[0]
        assert eval_where_fragment(db, "topics", [], "title = ?", ("welcome",), row)

    def test_in_subquery(self, db):
        row = db.all_rows("posts")[0]
        assert eval_where_fragment(
            db, "posts", [],
            "topic_id IN (SELECT topic_id FROM topic_allowed_groups "
            "WHERE group_id = ?)", (7,), row)
        assert not eval_where_fragment(
            db, "posts", [],
            "topic_id IN (SELECT topic_id FROM topic_allowed_groups "
            "WHERE group_id = ?)", (99,), row)

    def test_and_or_not(self, db):
        row = db.all_rows("topics")[0]
        assert eval_where_fragment(db, "topics", [],
                                   "views > 3 AND title = 'welcome'", (), row)
        assert eval_where_fragment(db, "topics", [],
                                   "views > 30 OR title = 'welcome'", (), row)
        assert not eval_where_fragment(db, "topics", [],
                                       "NOT title = 'welcome'", (), row)
