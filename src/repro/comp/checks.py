"""Dynamic checks inserted at comp-typed call sites (§2.4, §3.2, §4).

When the checker types a call via a comp signature it attaches a
:class:`CheckSpec` to the call node.  At run time (with checks enabled) the
interpreter consults the spec:

* **before the call** — every comp expression in the signature is
  *re-evaluated* on the same input types recorded at type-checking time; a
  different result means mutable state the comp type depends on changed
  (e.g. the DB schema), and an exception is raised (§4 "Heap Mutation");
  computed argument types are also checked against the actual argument
  values (contract-style);
* **after the call** — the returned value is checked against the computed
  return type: λC's checked call ⌈A⌉e.m(e), reducing to blame on failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtypes import CompExpr, RType
from repro.runtime.errors import Blame
from repro.runtime.membership import value_has_type


@dataclass
class CheckSpec:
    """Runtime contract for one comp-typed call site."""

    method_desc: str
    ret_type: RType
    arg_types: list[RType] = field(default_factory=list)
    # (comp expression, bindings, expected result) triples for consistency
    comp_results: list[tuple[CompExpr, dict, RType]] = field(default_factory=list)
    engine: object = None
    line: int = 0
    col: int = 0
    check_args: bool = True
    # db.version at the last successful consistency re-validation; the
    # inputs (bindings) are fixed per call site, so the comp results can
    # only change when the mutable state they consult changes (§4)
    _validated_version: int | None = field(default=None, repr=False)

    def before_call(self, interp, receiver, args, line) -> None:
        version = getattr(interp.db, "version", 0) if interp.db else 0
        if self._validated_version == version:
            self._check_arg_values(interp, args, line)
            return
        for comp, bindings, expected in self.comp_results:
            try:
                recomputed = self.engine.evaluate_for_check(
                    comp, bindings, line, self.method_desc)
            except Exception as exc:
                raise Blame(
                    f"comp type for {self.method_desc} failed to re-evaluate "
                    f"at call time: {exc}", line, col=self.col,
                )
            if recomputed != expected:
                raise Blame(
                    f"comp type for {self.method_desc} changed between type "
                    f"checking ({expected.to_s()}) and call time "
                    f"({recomputed.to_s()}) — mutable state the type depends "
                    f"on was modified", line, col=self.col,
                )
        self._validated_version = version
        self._check_arg_values(interp, args, line)

    def _check_arg_values(self, interp, args, line) -> None:
        if self.check_args:
            for value, expected in zip(args, self.arg_types):
                if not value_has_type(interp, value, expected):
                    raise Blame(
                        f"argument to {self.method_desc} is not a "
                        f"{expected.to_s()}", line, col=self.col,
                    )

    def after_call(self, interp, receiver, args, result, line) -> None:
        if not value_has_type(interp, result, self.ret_type):
            raise Blame(
                f"{self.method_desc} returned a value outside its computed "
                f"type {self.ret_type.to_s()}", line, col=self.col,
            )
