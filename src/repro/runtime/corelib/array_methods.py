"""Array native methods.

Array is the largest annotated library in the paper (114 comp type
definitions).  Tuple types ride on these methods: ``Array#first`` returns
the type of a tuple's first element, ``Array#[]`` mirrors ``Hash#[]``, and
the mutators (``push``, ``[]=``, ``map!``, …) trigger weak updates (§2.2).
"""

from __future__ import annotations

from repro.runtime.errors import RubyError
from repro.runtime.corelib.helpers import (
    arg_or,
    as_int,
    call_block,
    compare_values,
    eq,
    expect_block,
    native,
    sort_key,
)
from repro.runtime.objects import RArray, RBlock, RHash, RString, ruby_to_s
from repro.runtime.interp import BreakSignal


def _a(recv) -> list:
    if not isinstance(recv, RArray):
        raise RubyError("TypeError", "Array method on non-array")
    return recv.items


def _wrap_iter(fn):
    """Run an iterator body, converting ``break`` into its value."""
    def wrapped(i, recv, args, block):
        try:
            return fn(i, recv, args, block)
        except BreakSignal as brk:
            return brk.value
    return wrapped


def install_array(interp) -> None:
    array = interp.classes["Array"]

    # -- element access -------------------------------------------------------
    native(array, "[]", _index)
    native(array, "slice", _index)
    native(array, "[]=", _index_set)
    native(array, "at", lambda i, r, a, b: _at(_a(r), as_int(arg_or(a, 0))))
    native(array, "fetch", _fetch)
    native(array, "dig", _dig)
    native(array, "first", _first)
    native(array, "last", _last)
    native(array, "values_at", lambda i, r, a, b: RArray([_at(_a(r), as_int(x)) for x in a]))
    native(array, "assoc", _assoc)
    native(array, "sample", lambda i, r, a, b: _a(r)[0] if _a(r) else None)  # deterministic

    # -- size -------------------------------------------------------------------
    native(array, "length", lambda i, r, a, b: len(_a(r)))
    native(array, "size", lambda i, r, a, b: len(_a(r)))
    native(array, "count", _count)
    native(array, "empty?", lambda i, r, a, b: len(_a(r)) == 0)

    # -- mutation -----------------------------------------------------------------
    native(array, "push", _push)
    native(array, "append", _push)
    native(array, "<<", lambda i, r, a, b: (_a(r).append(arg_or(a, 0)), r)[1])
    native(array, "pop", lambda i, r, a, b: _a(r).pop() if _a(r) else None)
    native(array, "shift", lambda i, r, a, b: _a(r).pop(0) if _a(r) else None)
    native(array, "unshift", _unshift)
    native(array, "prepend", _unshift)
    native(array, "insert", _insert)
    native(array, "delete", _delete)
    native(array, "delete_at", _delete_at)
    native(array, "delete_if", _wrap_iter(_delete_if))
    native(array, "keep_if", _wrap_iter(_keep_if))
    native(array, "clear", lambda i, r, a, b: (_a(r).clear(), r)[1])
    native(array, "replace", lambda i, r, a, b: (_replace(r, arg_or(a, 0)), r)[1])
    native(array, "fill", _fill)
    native(array, "concat", _concat)

    # -- copies ---------------------------------------------------------------------
    native(array, "compact", lambda i, r, a, b: RArray([x for x in _a(r) if x is not None]))
    native(array, "compact!", _compact_bang)
    native(array, "flatten", lambda i, r, a, b: RArray(_flatten(_a(r))))
    native(array, "flatten!", lambda i, r, a, b: (_replace(r, RArray(_flatten(_a(r)))), r)[1])
    native(array, "uniq", _wrap_iter(_uniq))
    native(array, "uniq!", _wrap_iter(_uniq_bang))
    native(array, "reverse", lambda i, r, a, b: RArray(list(reversed(_a(r)))))
    native(array, "reverse!", lambda i, r, a, b: (_a(r).reverse(), r)[1])
    native(array, "rotate", _rotate)
    native(array, "dup", lambda i, r, a, b: RArray(list(_a(r))))
    native(array, "clone", lambda i, r, a, b: RArray(list(_a(r))))
    native(array, "+", lambda i, r, a, b: RArray(_a(r) + _a(arg_or(a, 0))))
    native(array, "-", lambda i, r, a, b: RArray([x for x in _a(r) if not _contains(_a(arg_or(a, 0)), x)]))
    native(array, "*", _times_or_join)
    native(array, "&", lambda i, r, a, b: RArray(_uniq_list([x for x in _a(r) if _contains(_a(arg_or(a, 0)), x)])))
    native(array, "|", lambda i, r, a, b: RArray(_uniq_list(_a(r) + _a(arg_or(a, 0)))))

    # -- ordering -----------------------------------------------------------------------
    native(array, "sort", _wrap_iter(_sort))
    native(array, "sort!", _wrap_iter(_sort_bang))
    native(array, "sort_by", _wrap_iter(_sort_by))
    native(array, "sort_by!", _wrap_iter(_sort_by_bang))
    native(array, "min", _wrap_iter(_min))
    native(array, "max", _wrap_iter(_max))
    native(array, "min_by", _wrap_iter(_min_by))
    native(array, "max_by", _wrap_iter(_max_by))
    native(array, "minmax", lambda i, r, a, b: RArray([_min(i, r, a, b), _max(i, r, a, b)]))
    native(array, "sum", _sum)

    # -- search -------------------------------------------------------------------------
    native(array, "include?", lambda i, r, a, b: _contains(_a(r), arg_or(a, 0)))
    native(array, "index", _wrap_iter(_find_index))
    native(array, "find_index", _wrap_iter(_find_index))
    native(array, "rindex", _rindex)
    native(array, "find", _wrap_iter(_find))
    native(array, "detect", _wrap_iter(_find))
    native(array, "bsearch", _wrap_iter(_find))

    # -- iteration ---------------------------------------------------------------------
    native(array, "each", _wrap_iter(_each))
    native(array, "each_with_index", _wrap_iter(_each_with_index))
    native(array, "each_index", _wrap_iter(_each_index))
    native(array, "each_with_object", _wrap_iter(_each_with_object))
    native(array, "reverse_each", _wrap_iter(_reverse_each))
    native(array, "map", _wrap_iter(_map))
    native(array, "collect", _wrap_iter(_map))
    native(array, "map!", _wrap_iter(_map_bang))
    native(array, "collect!", _wrap_iter(_map_bang))
    native(array, "flat_map", _wrap_iter(_flat_map))
    native(array, "collect_concat", _wrap_iter(_flat_map))
    native(array, "select", _wrap_iter(_select))
    native(array, "filter", _wrap_iter(_select))
    native(array, "select!", _wrap_iter(_keep_if))
    native(array, "filter!", _wrap_iter(_keep_if))
    native(array, "filter_map", _wrap_iter(_filter_map))
    native(array, "reject", _wrap_iter(_reject))
    native(array, "reject!", _wrap_iter(_delete_if))
    native(array, "reduce", _wrap_iter(_reduce))
    native(array, "inject", _wrap_iter(_reduce))
    native(array, "each_slice", _wrap_iter(_each_slice))
    native(array, "each_cons", _wrap_iter(_each_cons))
    native(array, "partition", _wrap_iter(_partition))
    native(array, "group_by", _wrap_iter(_group_by))
    native(array, "tally", _tally)
    native(array, "zip", _zip)
    native(array, "cycle", _wrap_iter(_cycle))

    # -- predicates over blocks ------------------------------------------------------------
    native(array, "all?", _wrap_iter(_all))
    native(array, "any?", _wrap_iter(_any))
    native(array, "none?", _wrap_iter(_none))
    native(array, "one?", _wrap_iter(_one))

    # -- slicing -----------------------------------------------------------------------------
    native(array, "take", lambda i, r, a, b: RArray(_a(r)[:as_int(arg_or(a, 0))]))
    native(array, "drop", lambda i, r, a, b: RArray(_a(r)[as_int(arg_or(a, 0)):]))
    native(array, "take_while", _wrap_iter(_take_while))
    native(array, "drop_while", _wrap_iter(_drop_while))

    # -- conversion ----------------------------------------------------------------------------
    native(array, "join", _join)
    native(array, "to_a", lambda i, r, a, b: r)
    native(array, "to_ary", lambda i, r, a, b: r)
    native(array, "to_h", _to_h)
    native(array, "to_s", lambda i, r, a, b: RString(ruby_to_s(r)))
    native(array, "inspect", lambda i, r, a, b: RString(ruby_to_s(r)))
    native(array, "hash", lambda i, r, a, b: len(_a(r)))
    native(array, "==", lambda i, r, a, b: eq(r, arg_or(a, 0)))
    native(array, "eql?", lambda i, r, a, b: eq(r, arg_or(a, 0)))
    native(array, "freeze", lambda i, r, a, b: r)
    native(array, "frozen?", lambda i, r, a, b: False)
    native(array, "product", _product)
    native(array, "combination", _combination)
    native(array, "transpose", _transpose)
    native(array, "compact_blank", lambda i, r, a, b: RArray([x for x in _a(r) if x not in (None, False)]))


# ---------------------------------------------------------------------------
# implementations
# ---------------------------------------------------------------------------

def _at(items: list, index: int):
    if index < 0:
        index += len(items)
    if 0 <= index < len(items):
        return items[index]
    return None


def _index(i, recv, args, block):
    items = _a(recv)
    first = arg_or(args, 0)
    from repro.runtime.interp import RRange

    if isinstance(first, RRange):
        span = first.span()
        if not span:
            return RArray([])
        return RArray(items[span.start:span[-1] + 1])
    start = as_int(first)
    if len(args) >= 2:
        length = as_int(args[1])
        if start < 0:
            start += len(items)
        if start < 0 or start > len(items) or length < 0:
            return None
        return RArray(items[start:start + length])
    return _at(items, start)


def _index_set(i, recv, args, block):
    items = _a(recv)
    index = as_int(args[0])
    value = args[-1]
    if index < 0:
        index += len(items)
    while len(items) <= index:
        items.append(None)
    items[index] = value
    return value


def _fetch(i, recv, args, block):
    items = _a(recv)
    index = as_int(arg_or(args, 0))
    original = index
    if index < 0:
        index += len(items)
    if 0 <= index < len(items):
        return items[index]
    if len(args) >= 2:
        return args[1]
    if block is not None:
        return call_block(i, block, [original])
    raise RubyError("IndexError", f"index {original} outside of array bounds")


def _dig(i, recv, args, block):
    current: object = recv
    for key in args:
        if current is None:
            return None
        current = i.call_method(current, "[]", [key], None, 0)
    return current


def _first(i, recv, args, block):
    items = _a(recv)
    if args:
        return RArray(items[:as_int(args[0])])
    return items[0] if items else None


def _last(i, recv, args, block):
    items = _a(recv)
    if args:
        n = as_int(args[0])
        return RArray(items[-n:] if n else [])
    return items[-1] if items else None


def _assoc(i, recv, args, block):
    for item in _a(recv):
        if isinstance(item, RArray) and item.items and eq(item.items[0], arg_or(args, 0)):
            return item
    return None


def _count(i, recv, args, block):
    items = _a(recv)
    if args:
        return sum(1 for x in items if eq(x, args[0]))
    if block is not None:
        return sum(1 for x in items if _truthy(call_block(i, block, [x])))
    return len(items)


def _truthy(value) -> bool:
    return value is not None and value is not False


def _push(i, recv, args, block):
    _a(recv).extend(args)
    return recv


def _unshift(i, recv, args, block):
    for value in reversed(args):
        _a(recv).insert(0, value)
    return recv


def _insert(i, recv, args, block):
    index = as_int(args[0])
    items = _a(recv)
    if index < 0:
        index += len(items) + 1
    for offset, value in enumerate(args[1:]):
        items.insert(index + offset, value)
    return recv


def _delete(i, recv, args, block):
    items = _a(recv)
    target = arg_or(args, 0)
    found = _contains(items, target)
    items[:] = [x for x in items if not eq(x, target)]
    return target if found else None


def _delete_at(i, recv, args, block):
    items = _a(recv)
    index = as_int(arg_or(args, 0))
    if index < 0:
        index += len(items)
    if 0 <= index < len(items):
        return items.pop(index)
    return None


def _delete_if(i, recv, args, block):
    expect_block(i, block, "delete_if")
    items = _a(recv)
    items[:] = [x for x in items if not _truthy(call_block(i, block, [x]))]
    return recv


def _keep_if(i, recv, args, block):
    expect_block(i, block, "keep_if")
    items = _a(recv)
    items[:] = [x for x in items if _truthy(call_block(i, block, [x]))]
    return recv


def _replace(recv: RArray, other) -> None:
    recv.items[:] = _a(other)


def _fill(i, recv, args, block):
    items = _a(recv)
    if block is not None:
        for index in range(len(items)):
            items[index] = call_block(i, block, [index])
    else:
        value = arg_or(args, 0)
        for index in range(len(items)):
            items[index] = value
    return recv


def _concat(i, recv, args, block):
    for other in args:
        _a(recv).extend(_a(other))
    return recv


def _compact_bang(i, recv, args, block):
    items = _a(recv)
    before = len(items)
    items[:] = [x for x in items if x is not None]
    return recv if len(items) != before else None


def _flatten(items: list) -> list:
    out: list = []
    for item in items:
        if isinstance(item, RArray):
            out.extend(_flatten(item.items))
        else:
            out.append(item)
    return out


def _uniq_list(items: list) -> list:
    out: list = []
    for item in items:
        if not _contains(out, item):
            out.append(item)
    return out


def _uniq(i, recv, args, block):
    if block is None:
        return RArray(_uniq_list(_a(recv)))
    seen: list = []
    out: list = []
    for item in _a(recv):
        key = call_block(i, block, [item])
        if not _contains(seen, key):
            seen.append(key)
            out.append(item)
    return RArray(out)


def _uniq_bang(i, recv, args, block):
    items = _a(recv)
    before = len(items)
    items[:] = _uniq_list(items)
    return recv if len(items) != before else None


def _rotate(i, recv, args, block):
    items = _a(recv)
    n = as_int(arg_or(args, 0, 1)) % len(items) if items else 0
    return RArray(items[n:] + items[:n])


def _times_or_join(i, recv, args, block):
    arg = arg_or(args, 0)
    if isinstance(arg, RString):
        return _join(i, recv, [arg], block)
    return RArray(_a(recv) * as_int(arg))


def _contains(items: list, value) -> bool:
    return any(eq(x, value) for x in items)


def _sort(i, recv, args, block):
    items = list(_a(recv))
    if block is None:
        items.sort(key=sort_key(i))
    else:
        import functools
        items.sort(key=functools.cmp_to_key(
            lambda x, y: call_block(i, block, [x, y])))
    return RArray(items)


def _sort_bang(i, recv, args, block):
    result = _sort(i, recv, args, block)
    _replace(recv, result)
    return recv


def _sort_by(i, recv, args, block):
    expect_block(i, block, "sort_by")
    items = list(_a(recv))
    keyed = [(call_block(i, block, [x]), x) for x in items]
    keyed.sort(key=lambda pair: sort_key(i)(pair[0]))
    return RArray([x for _, x in keyed])


def _sort_by_bang(i, recv, args, block):
    result = _sort_by(i, recv, args, block)
    _replace(recv, result)
    return recv


def _min(i, recv, args, block):
    items = _a(recv)
    if not items:
        return None
    return min(items, key=sort_key(i))


def _max(i, recv, args, block):
    items = _a(recv)
    if not items:
        return None
    return max(items, key=sort_key(i))


def _min_by(i, recv, args, block):
    expect_block(i, block, "min_by")
    items = _a(recv)
    if not items:
        return None
    return min(items, key=lambda x: sort_key(i)(call_block(i, block, [x])))


def _max_by(i, recv, args, block):
    expect_block(i, block, "max_by")
    items = _a(recv)
    if not items:
        return None
    return max(items, key=lambda x: sort_key(i)(call_block(i, block, [x])))


def _sum(i, recv, args, block):
    total = arg_or(args, 0, 0)
    for item in _a(recv):
        value = call_block(i, block, [item]) if block is not None else item
        total = i.call_method(total, "+", [value], None, 0)
    return total


def _find_index(i, recv, args, block):
    items = _a(recv)
    if args:
        for index, item in enumerate(items):
            if eq(item, args[0]):
                return index
        return None
    expect_block(i, block, "index")
    for index, item in enumerate(items):
        if _truthy(call_block(i, block, [item])):
            return index
    return None


def _rindex(i, recv, args, block):
    items = _a(recv)
    for index in range(len(items) - 1, -1, -1):
        if eq(items[index], arg_or(args, 0)):
            return index
    return None


def _find(i, recv, args, block):
    expect_block(i, block, "find")
    for item in _a(recv):
        if _truthy(call_block(i, block, [item])):
            return item
    return None


def _each(i, recv, args, block):
    if block is None:
        return recv
    for item in _a(recv):
        call_block(i, block, [item])
    return recv


def _each_with_index(i, recv, args, block):
    expect_block(i, block, "each_with_index")
    for index, item in enumerate(_a(recv)):
        call_block(i, block, [item, index])
    return recv


def _each_index(i, recv, args, block):
    expect_block(i, block, "each_index")
    for index in range(len(_a(recv))):
        call_block(i, block, [index])
    return recv


def _each_with_object(i, recv, args, block):
    expect_block(i, block, "each_with_object")
    memo = arg_or(args, 0)
    for item in _a(recv):
        call_block(i, block, [item, memo])
    return memo


def _reverse_each(i, recv, args, block):
    expect_block(i, block, "reverse_each")
    for item in reversed(_a(recv)):
        call_block(i, block, [item])
    return recv


def _map(i, recv, args, block):
    expect_block(i, block, "map")
    return RArray([call_block(i, block, [x]) for x in _a(recv)])


def _map_bang(i, recv, args, block):
    expect_block(i, block, "map!")
    items = _a(recv)
    items[:] = [call_block(i, block, [x]) for x in items]
    return recv


def _flat_map(i, recv, args, block):
    expect_block(i, block, "flat_map")
    out: list = []
    for item in _a(recv):
        result = call_block(i, block, [item])
        if isinstance(result, RArray):
            out.extend(result.items)
        else:
            out.append(result)
    return RArray(out)


def _select(i, recv, args, block):
    expect_block(i, block, "select")
    return RArray([x for x in _a(recv) if _truthy(call_block(i, block, [x]))])


def _filter_map(i, recv, args, block):
    expect_block(i, block, "filter_map")
    out = []
    for item in _a(recv):
        value = call_block(i, block, [item])
        if _truthy(value):
            out.append(value)
    return RArray(out)


def _reject(i, recv, args, block):
    expect_block(i, block, "reject")
    return RArray([x for x in _a(recv) if not _truthy(call_block(i, block, [x]))])


def _reduce(i, recv, args, block):
    items = list(_a(recv))
    from repro.rtypes.kinds import Sym as _Sym

    if args and isinstance(args[-1], _Sym):
        op = args[-1].name
        memo = args[0] if len(args) > 1 else (items.pop(0) if items else None)
        for item in items:
            memo = i.call_method(memo, op, [item], None, 0)
        return memo
    expect_block(i, block, "reduce")
    if args:
        memo = args[0]
    else:
        if not items:
            return None
        memo = items.pop(0)
    for item in items:
        memo = call_block(i, block, [memo, item])
    return memo


def _each_slice(i, recv, args, block):
    n = as_int(arg_or(args, 0))
    items = _a(recv)
    slices = [RArray(items[k:k + n]) for k in range(0, len(items), n)]
    if block is None:
        return RArray(slices)
    for chunk in slices:
        call_block(i, block, [chunk])
    return None


def _each_cons(i, recv, args, block):
    n = as_int(arg_or(args, 0))
    items = _a(recv)
    windows = [RArray(items[k:k + n]) for k in range(0, len(items) - n + 1)]
    if block is None:
        return RArray(windows)
    for window in windows:
        call_block(i, block, [window])
    return None


def _partition(i, recv, args, block):
    expect_block(i, block, "partition")
    yes, no = [], []
    for item in _a(recv):
        (yes if _truthy(call_block(i, block, [item])) else no).append(item)
    return RArray([RArray(yes), RArray(no)])


def _group_by(i, recv, args, block):
    expect_block(i, block, "group_by")
    result = RHash()
    for item in _a(recv):
        key = call_block(i, block, [item])
        bucket = result.get(key)
        if bucket is None:
            bucket = RArray([])
            result.set(key, bucket)
        bucket.items.append(item)
    return result


def _tally(i, recv, args, block):
    result = RHash()
    for item in _a(recv):
        result.set(item, (result.get(item) or 0) + 1)
    return result


def _zip(i, recv, args, block):
    items = _a(recv)
    others = [_a(other) for other in args]
    out = []
    for index, item in enumerate(items):
        row = [item] + [o[index] if index < len(o) else None for o in others]
        out.append(RArray(row))
    return RArray(out)


def _cycle(i, recv, args, block):
    expect_block(i, block, "cycle")
    n = as_int(arg_or(args, 0, 1))
    for _ in range(n):
        for item in _a(recv):
            call_block(i, block, [item])
    return None


def _all(i, recv, args, block):
    items = _a(recv)
    if block is None:
        return all(_truthy(x) for x in items)
    return all(_truthy(call_block(i, block, [x])) for x in items)


def _any(i, recv, args, block):
    items = _a(recv)
    if block is None:
        return any(_truthy(x) for x in items)
    return any(_truthy(call_block(i, block, [x])) for x in items)


def _none(i, recv, args, block):
    return not _any(i, recv, args, block)


def _one(i, recv, args, block):
    items = _a(recv)
    if block is None:
        return sum(1 for x in items if _truthy(x)) == 1
    return sum(1 for x in items if _truthy(call_block(i, block, [x]))) == 1


def _take_while(i, recv, args, block):
    expect_block(i, block, "take_while")
    out = []
    for item in _a(recv):
        if not _truthy(call_block(i, block, [item])):
            break
        out.append(item)
    return RArray(out)


def _drop_while(i, recv, args, block):
    expect_block(i, block, "drop_while")
    items = _a(recv)
    index = 0
    while index < len(items) and _truthy(call_block(i, block, [items[index]])):
        index += 1
    return RArray(items[index:])


def _join(i, recv, args, block):
    sep = ""
    if args and isinstance(args[0], RString):
        sep = args[0].val
    return RString(sep.join(ruby_to_s(x) for x in _flatten(_a(recv))))


def _to_h(i, recv, args, block):
    result = RHash()
    for item in _a(recv):
        if block is not None:
            item = call_block(i, block, [item])
        if not isinstance(item, RArray) or len(item.items) != 2:
            raise RubyError("TypeError", "wrong element type for to_h")
        result.set(item.items[0], item.items[1])
    return result


def _product(i, recv, args, block):
    result = [[x] for x in _a(recv)]
    for other in args:
        result = [row + [y] for row in result for y in _a(other)]
    return RArray([RArray(row) for row in result])


def _combination(i, recv, args, block):
    import itertools

    n = as_int(arg_or(args, 0))
    combos = [RArray(list(c)) for c in itertools.combinations(_a(recv), n)]
    if block is None:
        return RArray(combos)
    for combo in combos:
        call_block(i, block, [combo])
    return recv


def _transpose(i, recv, args, block):
    rows = [_a(row) for row in _a(recv)]
    if not rows:
        return RArray([])
    return RArray([RArray(list(col)) for col in zip(*rows)])
