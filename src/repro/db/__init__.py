"""An in-memory relational database substrate.

The paper's headline application is typing database queries: comp types look
up table schemas (``RDL.db_schema``) to compute precise query types (§2.1).
This package provides the schemas, rows, and query engine that the
ActiveRecord-like and Sequel-like DSLs (:mod:`repro.orm`) and the SQL type
checker (:mod:`repro.sqltc`) operate on.
"""

from repro.db.schema import Column, Database, TableSchema
from repro.db.engine import QueryEngine

__all__ = ["Column", "Database", "QueryEngine", "TableSchema"]
