"""The analysis consumers: scheduler re-dirtying, planner costs, warm
session delta skipping."""

import pytest

from repro import CompRDL, Database
from repro.analysis.footprint import StaticFootprint
from repro.apps import app_for_label
from repro.parallel.planner import BASE_METHOD_COST, method_cost
from repro.parallel.protocol import MethodSpec
from repro.typecheck.registry import MethodKey


@pytest.fixture
def rdl():
    app = app_for_label("discourse")
    rdl = app.build()
    rdl.check_all(app.label)
    return rdl


def erase_deps(rdl, key):
    """Simulate a verdict adopted without dynamic deps (a worker that
    could not capture them)."""
    rdl.incremental.tracker.forget(key)
    assert rdl.incremental.tracker.deps_of(key) is None


class TestSchedulerStaticDirty:
    def test_static_footprint_decides_for_depless_verdicts(self, rdl):
        scheduler = rdl.incremental
        key = MethodKey("User", "staff_count", True)
        assert key in scheduler.results
        erase_deps(rdl, key)
        rdl.analyze()
        footprint = scheduler.static_footprints[key]
        assert not footprint.wildcard

        # a migration of an unrelated table must NOT dirty it...
        rdl.db.create_table("unrelated_things", note="string")
        assert key not in scheduler.dirty
        # ...but touching a table its static footprint names must
        rdl.db.add_column("users", "probe", "string")
        assert key in scheduler.dirty
        assert rdl.incremental_stats.extra.get("analysis_static_dirtied",
                                               0) >= 1

    def test_depless_verdict_without_footprint_dirtied_conservatively(
            self, rdl):
        scheduler = rdl.incremental
        key = MethodKey("User", "staff_count", True)
        erase_deps(rdl, key)
        assert not scheduler.static_footprints
        rdl.db.create_table("unrelated_things", note="string")
        # with neither dynamic deps nor a static footprint the only sound
        # answer is "affected"
        assert key in scheduler.dirty
        assert rdl.incremental_stats.extra.get(
            "analysis_conservative_dirtied", 0) >= 1

    def test_rename_table_dirties_by_static_footprint(self, rdl):
        """A rename_table journal event carries the new name as its
        detail: methods whose *static* footprint names either table name
        must be dirtied (satellite of the soundness contract)."""
        scheduler = rdl.incremental
        old_name_key = MethodKey("User", "staff_count", True)
        new_name_key = MethodKey("Topic", "hot?", False)
        for key in (old_name_key, new_name_key):
            assert key in scheduler.results
            erase_deps(rdl, key)
        rdl.analyze()
        # pin one footprint to the *new* name to prove the detail side
        scheduler.adopt_static_footprints({
            new_name_key: StaticFootprint(tables=frozenset({"members"})),
        })
        assert "users" in scheduler.static_footprints[old_name_key].tables

        rdl.db.rename_table("users", "members")
        assert old_name_key in scheduler.dirty, \
            "footprint naming the old table must dirty on rename"
        assert new_name_key in scheduler.dirty, \
            "footprint naming the new table must dirty on rename"

    def test_verdicts_with_dynamic_deps_unaffected_by_seeding(self, rdl):
        from repro.incremental.versioning import WILDCARD

        scheduler = rdl.incremental
        rdl.analyze()
        rdl.db.create_table("unrelated_things", note="string")
        # dynamic deps exist for everything, so the static fallback never
        # fires; only methods whose *dynamic* footprint is wildcard react
        # to an unrelated migration (pre-existing behavior)
        for key in scheduler.dirty:
            deps = scheduler.tracker.deps_of(key)
            assert deps is not None and WILDCARD in deps.tables
        assert "analysis_conservative_dirtied" not in \
            rdl.incremental_stats.extra
        assert "analysis_static_dirtied" not in \
            rdl.incremental_stats.extra


class TestPlannerStaticCost:
    def test_static_cost_used_when_no_observation(self, rdl):
        report = rdl.analyze()
        static_costs = report.static_costs()
        spec = MethodSpec("discourse", "User", "staff_count", True)
        assert spec.desc in static_costs

        cost = method_cost(spec, rdl.registry, stats=None,
                           static_costs=static_costs)
        assert cost == pytest.approx(
            BASE_METHOD_COST * static_costs[spec.desc])

    def test_observed_cost_still_wins(self, rdl):
        report = rdl.analyze()
        spec = MethodSpec("discourse", "User", "staff_count", True)
        stats = rdl.incremental_stats
        stats.method_costs[spec.desc] = 0.123
        cost = method_cost(spec, rdl.registry, stats=stats,
                           static_costs=report.static_costs())
        assert cost == pytest.approx(0.123)

    def test_bigger_footprints_cost_more(self, rdl):
        report = rdl.analyze()
        costs = report.static_costs()
        light = MethodSpec("discourse", "User", "staff?", False)
        heavy = MethodSpec("discourse", "Topic", "excerpt", False)
        assert costs[heavy.desc] > costs[light.desc]


class TestWarmDeltaSkip:
    def test_delta_irrelevant_requires_footprints_and_disjointness(self):
        """Unit-level: _delta_irrelevant over fabricated worker handles."""
        from repro.parallel.engine import ParallelCheckEngine

        class Handle:
            def __init__(self, gen, loads):
                self.synced_generation = gen
                self.loads_applied = loads
                self.attached = True

        app = app_for_label("discourse")
        rdl = app.build()
        rdl.check_all(app.label)
        rdl.analyze()
        scheduler = rdl.incremental
        key = MethodKey("User", "staff_count", True)
        assert not scheduler.static_footprints[key].wildcard

        engine = ParallelCheckEngine(workers=2)
        base_gen = rdl.db.version
        handles = [Handle(base_gen, len(rdl.post_build_loads))]
        engine._attached_workers = lambda: handles

        # no delta yet: nothing to skip
        assert not engine._delta_irrelevant(rdl, [key])
        # a delta touching only an unrelated table: skippable
        rdl.db.create_table("unrelated_things", note="string")
        assert engine._delta_irrelevant(rdl, [key])
        # a delta touching the method's own table: must sync
        rdl.db.add_column("users", "probe", "string")
        assert not engine._delta_irrelevant(rdl, [key])
        # wildcard-footprint methods always sync
        rdl.db.journal  # (journal unchanged)
        handles[0].synced_generation = rdl.db.version
        rdl.db.create_table("more_unrelated", note="string")
        wild = next(k for k, fp in scheduler.static_footprints.items()
                    if fp.wildcard)
        assert not engine._delta_irrelevant(rdl, [wild])
        # unshipped load records always sync
        handles[0].loads_applied = -1
        assert not engine._delta_irrelevant(rdl, [key])

    def test_warm_round_skips_sync_for_disjoint_delta(self):
        """Integration: a warm recheck whose pending methods' static
        footprints are disjoint from the journal delta ships CheckRequests
        without a sync — and the verdicts stay correct.

        Uses journey: none of its methods record a *dynamic* wildcard, so
        an unrelated migration leaves the dirty set empty and the only
        pending method is the one this test un-caches.
        """
        app = app_for_label("journey")
        rdl = app.build()
        rdl.check_all(app.label)
        rdl.analyze()
        scheduler = rdl.incremental
        try:
            # round 1 needs pending work, or it returns before attaching
            del scheduler.results[MethodKey("Survey", "display_title",
                                            False)]
            rdl.recheck_dirty(workers=2)  # cold attach + sync
            run = rdl.warm_engine.last_warm_run
            if not run.remote:
                pytest.skip(f"warm session unavailable: "
                            f"{run.fallback_reason}")

            # make one statically-bounded method pending again, then
            # migrate a table its footprint does not name
            key = MethodKey("Question", "label", False)
            assert not scheduler.static_footprints[key].wildcard
            del scheduler.results[key]
            rdl.db.create_table("warm_unrelated", note="string")

            report = rdl.recheck_dirty(workers=2)
            extra = rdl.incremental_stats.extra
            assert extra.get("analysis_syncs_skipped", 0) == 1
            assert len(report.errors) == app.expected_errors
        finally:
            rdl.shutdown_warm()
