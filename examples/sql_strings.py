"""Raw SQL type checking (the paper's §2.3 / Fig. 3).

``where``'s comp type inspects its argument's *type*: a const string type
carries the literal SQL text, which is wrapped into an artificial query,
parsed, and checked against the database schema — with ``?`` placeholders
typed from the extra arguments.  This reproduces the paper's injected bug:
``topics.title`` (a string) searched in a set of integers.

Run: python examples/sql_strings.py
"""

from repro import CompRDL, Database


def fresh_rdl() -> CompRDL:
    db = Database()
    db.create_table("posts", topic_id="integer", raw="string")
    db.create_table("topics", title="string")
    db.create_table("topic_allowed_groups", group_id="integer",
                    topic_id="integer")
    db.declare_association("posts", "topics")
    db.insert("topics", {"title": "welcome"})
    db.insert("posts", {"topic_id": 1, "raw": "hello"})
    db.insert("topic_allowed_groups", {"group_id": 7, "topic_id": 1})
    return CompRDL(db=db)


BUGGY = """
class Post < ActiveRecord::Base
  type "(Integer) -> Table", typecheck: :model
  def self.allowed(gid)
    Post.includes(:topics).where('topics.title IN (SELECT topic_id FROM topic_allowed_groups WHERE group_id = ?)', gid)
  end
end
"""

FIXED = """
class Post < ActiveRecord::Base
  type "(Integer) -> Table", typecheck: :model
  def self.allowed(gid)
    Post.includes(:topics).where('posts.topic_id IN (SELECT topic_id FROM topic_allowed_groups WHERE group_id = ?)', gid)
  end
end
"""


def main() -> None:
    # the paper's injected bug: string column IN a set of integers
    rdl = fresh_rdl()
    rdl.load(BUGGY)
    print("Buggy query (Fig. 3):")
    print(rdl.check(":model").summary())

    # the corrected query type checks and runs
    rdl = fresh_rdl()
    rdl.load(FIXED)
    print("\nFixed query:")
    print(rdl.check(":model").summary())
    print("  rows matched:", rdl.run("Post.allowed(7).count", checks=True))
    print("  rows for other group:", rdl.run("Post.allowed(99).count", checks=True))

    # placeholders are typed from the arguments: passing a string where the
    # column is an integer is also caught
    rdl = fresh_rdl()
    rdl.load("""
class Post < ActiveRecord::Base
  type "(String) -> Table", typecheck: :model
  def self.bad_placeholder(name)
    Post.where('topic_id = ?', name)
  end
end
""")
    print("\nWrongly typed placeholder:")
    print(rdl.check(":model").summary())


if __name__ == "__main__":
    main()
