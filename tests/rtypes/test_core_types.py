"""Unit tests for the core RDL type representations."""

from repro.rtypes import (
    AnyType,
    BotType,
    ConstStringType,
    FiniteHashType,
    GenericType,
    NominalType,
    SingletonType,
    Sym,
    TupleType,
    UnionType,
    make_union,
)


class TestNominal:
    def test_equality(self):
        assert NominalType("Integer") == NominalType("Integer")
        assert NominalType("Integer") != NominalType("String")

    def test_render(self):
        assert str(NominalType("Integer")) == "Integer"

    def test_hashable(self):
        assert len({NominalType("A"), NominalType("A"), NominalType("B")}) == 2


class TestSingleton:
    def test_symbol_singleton(self):
        t = SingletonType(Sym("emails"))
        assert t.base_name == "Symbol"
        assert str(t) == ":emails"

    def test_integer_singleton(self):
        assert SingletonType(2).base_name == "Integer"

    def test_bool_singletons_distinct_from_ints(self):
        assert SingletonType(True) != SingletonType(1)
        assert SingletonType(False) != SingletonType(0)

    def test_nil_singleton(self):
        t = SingletonType(None)
        assert t.base_name == "NilClass"
        assert str(t) == "nil"

    def test_true_false_render(self):
        assert str(SingletonType(True)) == "true"
        assert str(SingletonType(False)) == "false"


class TestUnion:
    def test_flattening(self):
        a, b, c = NominalType("A"), NominalType("B"), NominalType("C")
        nested = make_union([a, make_union([b, c])])
        assert isinstance(nested, UnionType)
        assert set(nested.types) == {a, b, c}

    def test_dedup(self):
        a = NominalType("A")
        assert make_union([a, a]) == a

    def test_empty_union_is_bot(self):
        assert isinstance(make_union([]), BotType)

    def test_union_equality_is_order_insensitive(self):
        a, b = NominalType("A"), NominalType("B")
        assert make_union([a, b]) == make_union([b, a])

    def test_any_absorbs(self):
        assert isinstance(make_union([NominalType("A"), AnyType()]), AnyType)

    def test_bot_dropped(self):
        a = NominalType("A")
        assert make_union([a, BotType()]) == a


class TestFiniteHash:
    def test_render(self):
        fh = FiniteHashType({Sym("name"): NominalType("String")})
        assert str(fh) == "{ name: String }"

    def test_value_type_union(self):
        fh = FiniteHashType(
            {Sym("a"): NominalType("Integer"), Sym("b"): NominalType("String")}
        )
        assert fh.value_type() == make_union(
            [NominalType("Integer"), NominalType("String")]
        )

    def test_promoted(self):
        fh = FiniteHashType({Sym("a"): NominalType("Integer")})
        promoted = fh.promoted()
        assert promoted.base == "Hash"
        assert promoted.params[0] == NominalType("Symbol")
        assert promoted.params[1] == NominalType("Integer")

    def test_merged_for_joins(self):
        users = FiniteHashType({Sym("id"): NominalType("Integer")})
        emails = FiniteHashType({Sym("email"): NominalType("String")})
        joined = users.merged(emails)
        assert set(joined.elts) == {Sym("id"), Sym("email")}

    def test_widen_key_weak_update(self):
        fh = FiniteHashType({Sym("a"): NominalType("Integer")})
        fh.widen_key(Sym("a"), NominalType("String"))
        assert fh.elts[Sym("a")] == make_union(
            [NominalType("Integer"), NominalType("String")]
        )


class TestTuple:
    def test_render(self):
        t = TupleType([NominalType("Integer"), NominalType("String")])
        assert str(t) == "[Integer, String]"

    def test_promoted(self):
        t = TupleType([NominalType("Integer"), NominalType("String")])
        promoted = t.promoted()
        assert promoted.base == "Array"
        assert promoted.params[0] == make_union(
            [NominalType("Integer"), NominalType("String")]
        )

    def test_widen_elem_weak_update(self):
        t = TupleType([NominalType("Integer"), NominalType("String")])
        t.widen_elem(0, NominalType("String"))
        assert t.elts[0] == make_union([NominalType("Integer"), NominalType("String")])
        assert t.elts[1] == NominalType("String")

    def test_empty_tuple_promotes_to_array_object(self):
        assert TupleType([]).promoted() == GenericType("Array", [NominalType("Object")])


class TestConstString:
    def test_values_render(self):
        assert str(ConstStringType("hi")) == "'hi'"

    def test_promote_forgets_value(self):
        t = ConstStringType("select 1")
        t.promote()
        assert t.is_promoted
        assert str(t) == "String"

    def test_structural_equality(self):
        assert ConstStringType("a") == ConstStringType("a")
        assert ConstStringType("a") != ConstStringType("b")
