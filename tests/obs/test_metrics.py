"""The unified metrics registry and the stable-key stats snapshot."""

import json

from repro import obs
from repro.api import CompRDL
from repro.incremental import IncrementalStats

#: the public key contract — benchmarks and downstream charting read these;
#: renaming any of them is a breaking change
STATS_KEYS = {
    "comp_cache.hits", "comp_cache.misses", "comp_cache.hit_rate",
    "comp_cache.revalidations", "comp_cache.invalidations",
    "comp_cache.evictions",
    "ast_cache.hits", "ast_cache.misses", "ast_cache.hit_rate",
    "methods.checked", "methods.skipped", "methods.dirtied",
    "methods.reuse_rate", "methods.checked_parallel",
    "schema.events",
    "fleet.shards", "fleet.rounds",
    "planner.split_bias", "planner.cost_model_size",
    "warm.retries", "warm.fallbacks",
}


def test_incremental_stats_snapshot_has_stable_keys():
    stats = IncrementalStats()
    assert set(stats.snapshot()) == STATS_KEYS


def test_snapshot_reflects_counters_and_extra_mapping():
    stats = IncrementalStats(comp_hits=3, comp_misses=1, methods_checked=4,
                             methods_skipped=12)
    stats.extra["warm_worker_retries"] = 2
    stats.extra["split_bias"] = 1.5
    stats.extra["unmapped_thing"] = 9
    snap = stats.snapshot()
    assert snap["comp_cache.hits"] == 3
    assert snap["comp_cache.hit_rate"] == 0.75
    assert snap["methods.reuse_rate"] == 0.75
    # free-form extras land under their mapped stable names...
    assert snap["warm.retries"] == 2
    assert snap["planner.split_bias"] == 1.5
    # ...and unknown ones are preserved, not dropped
    assert snap["extra.unmapped_thing"] == 9


def test_to_json_round_trips():
    stats = IncrementalStats(comp_hits=5)
    decoded = json.loads(stats.to_json())
    assert decoded == stats.snapshot()


def test_metrics_snapshot_unifies_every_layer():
    obs.enable()
    rdl = CompRDL()
    rdl.load("""
class MetricsProbe
  type :"self.answer", "() -> Integer", typecheck: :probe
  def self.answer()
    42
  end
end
""")
    assert rdl.check_all("probe").ok()
    snap = rdl.metrics_snapshot()
    # incremental-stats keys pass through
    assert snap["methods.checked"] >= 1
    # process-wide layers join the same flat dict under their own prefixes
    assert "vm.inline_cache.hits" in snap
    assert "vm.inline_cache.misses" in snap
    assert "vm.inline_cache.hit_rate" in snap
    assert snap["intern.types"] > 0
    assert snap["obs.enabled"] is True
    # obs counters appear namespaced (subtype queries ran during the check)
    assert snap.get("counters.subtype.queries", 0) > 0
    # and the whole thing is JSON-serializable as-is
    json.dumps(snap)


def test_metrics_snapshot_merges_multiple_sources():
    first = IncrementalStats(comp_hits=2)
    second = IncrementalStats(comp_hits=5)
    snap = obs.metrics_snapshot(first, second)
    assert snap["comp_cache.hits"] == 7  # ints sum across universes


def test_metrics_snapshot_reports_provenance_state():
    from repro.obs import provenance

    snap = obs.metrics_snapshot()
    assert snap["provenance.enabled"] is False
    assert snap["provenance.records"] == 0
    provenance.enable()
    provenance.ProvenanceLedger().record("k", "K#m", [], 1)
    snap = obs.metrics_snapshot()
    assert snap["provenance.enabled"] is True
    assert snap["provenance.records"] == 1


def test_metrics_diff_subtracts_numeric_keys():
    before = {"comp_cache.hits": 10, "comp_cache.misses": 4,
              "methods.checked": 7, "obs.enabled": False,
              "planner.split_bias": 1.25}
    after = {"comp_cache.hits": 25, "comp_cache.misses": 4,
             "methods.checked": 9, "obs.enabled": True,
             "planner.split_bias": 1.5}
    diff = obs.metrics_diff(before, after)
    assert diff["comp_cache.hits"] == 15
    assert diff["methods.checked"] == 2
    # unchanged keys are omitted — a diff reads as "what moved"
    assert "comp_cache.misses" not in diff
    assert diff["planner.split_bias"] == 0.25
    # non-numeric changes report the after value
    assert diff["obs.enabled"] is True


def test_metrics_diff_handles_missing_and_none_values():
    before = {"warm.retries": None, "fleet.shards": 2}
    after = {"warm.retries": 3, "counters.subtype.queries": 40,
             "fleet.shards": 2}
    diff = obs.metrics_diff(before, after)
    # None and absent both count as zero on the numeric side
    assert diff["warm.retries"] == 3
    assert diff["counters.subtype.queries"] == 40
    assert "fleet.shards" not in diff
    # the documented idiom: "no misses during the window"
    assert diff.get("comp_cache.misses", 0) == 0


def test_metrics_diff_brackets_a_real_check():
    obs.enable()
    rdl = CompRDL()
    rdl.load("""
class DiffProbe
  type :"self.answer", "() -> Integer", typecheck: :probe
  def self.answer()
    42
  end
end
""")
    before = rdl.metrics_snapshot()
    assert rdl.check_all("probe").ok()
    diff = obs.metrics_diff(before, rdl.metrics_snapshot())
    assert diff["methods.checked"] >= 1
    # a second no-op pass moves nothing in the checked counter
    before = rdl.metrics_snapshot()
    rdl.check_all("probe")
    diff = obs.metrics_diff(before, rdl.metrics_snapshot())
    assert diff.get("methods.checked", 0) == 0
