"""Lexer for mini-Ruby.

Produces a flat token stream with explicit ``newline`` tokens (statement
terminators).  Double-quoted strings are lexed into interpolation *parts*:
a list alternating literal text and raw code fragments (``#{...}``), which
the parser recursively parses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.errors import LexError

KEYWORDS = {
    "def", "end", "if", "elsif", "else", "unless", "while", "until",
    "return", "class", "module", "self", "nil", "true", "false", "then",
    "do", "yield", "case", "when", "and", "or", "not", "break", "next",
    "begin", "rescue", "ensure", "raise", "require", "require_relative",
    "super", "lambda", "proc",
}

# Longest first so that e.g. "<=>" wins over "<=".
OPERATORS = [
    "<=>", "===", "**=", "<<=", ">>=", "...", "&&=", "||=",
    "==", "!=", "<=", ">=", "**", "<<", ">>", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "=>", "=~", "::", "..", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", ".", ",", "(", ")",
    "[", "]", "{", "}", "|", "&", "?", ":", ";", "@",
]


@dataclass(frozen=True)
class Token:
    """A lexical token: ``kind`` discriminates, ``value`` carries payload.

    ``col`` is the 1-based column of the token's first character (0 for
    synthetic tokens like ``newline``/``eof``), so diagnostics can point at
    a real source position instead of just a line.
    """

    kind: str
    value: object
    line: int
    col: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.value!r}, L{self.line}:{self.col})"


class Lexer:
    """Tokenize mini-Ruby source text."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        # offset of the current line's first character, for columns
        self.line_start = 0
        # column where the token being lexed started (set per dispatch)
        self._tok_col = 1
        self.tokens: list[Token] = []

    def error(self, message: str) -> LexError:
        return LexError(message, self.line)

    def tokenize(self) -> list[Token]:
        """Lex the whole source, returning the token list (ends with eof)."""
        while self.pos < len(self.source):
            ch = self.source[self.pos]
            self._tok_col = self.pos - self.line_start + 1
            if ch == "\n":
                self._emit_newline()
                self.pos += 1
                self.line += 1
                self.line_start = self.pos
            elif ch in " \t\r":
                self.pos += 1
            elif ch == "\\" and self._peek(1) == "\n":
                # explicit line continuation
                self.pos += 2
                self.line += 1
                self.line_start = self.pos
            elif ch == "#":
                self._skip_comment()
            elif ch.isdigit():
                self._lex_number()
            elif ch == '"':
                self._lex_dstring()
            elif ch == "'":
                self._lex_sstring()
            elif ch == ":" and self._is_symbol_start(self._peek(1)):
                self._lex_symbol()
            elif ch == "@":
                self._lex_ivar()
            elif ch == "$":
                self._lex_gvar()
            elif ch.isalpha() or ch == "_":
                self._lex_word()
            else:
                self._lex_operator()
        self._emit_newline()
        self.tokens.append(Token("eof", None, self.line))
        return self.tokens

    # -- helpers -----------------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _emit_newline(self) -> None:
        if self.tokens and self.tokens[-1].kind not in ("newline",):
            self.tokens.append(Token("newline", None, self.line))

    def _skip_comment(self) -> None:
        while self.pos < len(self.source) and self.source[self.pos] != "\n":
            self.pos += 1

    _SYMBOL_OPERATORS = ["<=>", "==", "!=", "[]=", "[]", "<=", ">=", "<<",
                         "**", "-@", "+", "-", "*", "/", "%", "<", ">", "!"]

    @staticmethod
    def _is_symbol_start(ch: str) -> bool:
        return bool(ch) and (ch.isalpha() or ch in '_"@$' or ch in "+-*/%<>=![")

    def _lex_number(self) -> None:
        start = self.pos
        while self._peek().isdigit() or self._peek() == "_":
            self.pos += 1
        if self._peek() == "." and self._peek(1).isdigit():
            self.pos += 1
            while self._peek().isdigit():
                self.pos += 1
            literal = self.source[start:self.pos].replace("_", "")
            self.tokens.append(Token("float", float(literal), self.line, self._tok_col))
        else:
            literal = self.source[start:self.pos].replace("_", "")
            self.tokens.append(Token("int", int(literal), self.line, self._tok_col))

    _ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "s": " ",
                "\\": "\\", "'": "'", '"': '"', "#": "#"}

    def _lex_sstring(self) -> None:
        self.pos += 1
        chars: list[str] = []
        while True:
            ch = self._peek()
            if not ch:
                raise self.error("unterminated string literal")
            if ch == "'":
                self.pos += 1
                break
            if ch == "\\" and self._peek(1) in ("'", "\\"):
                chars.append(self._peek(1))
                self.pos += 2
            else:
                if ch == "\n":
                    self.line += 1
                    self.line_start = self.pos + 1
                chars.append(ch)
                self.pos += 1
        self.tokens.append(Token("string", "".join(chars), self.line, self._tok_col))

    def _lex_dstring(self) -> None:
        self.pos += 1
        parts: list[tuple[str, str]] = []
        chars: list[str] = []
        while True:
            ch = self._peek()
            if not ch:
                raise self.error("unterminated string literal")
            if ch == '"':
                self.pos += 1
                break
            if ch == "\\":
                escape = self._peek(1)
                chars.append(self._ESCAPES.get(escape, "\\" + escape))
                self.pos += 2
                continue
            if ch == "#" and self._peek(1) == "{":
                if chars:
                    parts.append(("str", "".join(chars)))
                    chars = []
                parts.append(("code", self._lex_interp_code()))
                continue
            if ch == "\n":
                self.line += 1
                self.line_start = self.pos + 1
            chars.append(ch)
            self.pos += 1
        if chars or not parts:
            parts.append(("str", "".join(chars)))
        if len(parts) == 1 and parts[0][0] == "str":
            self.tokens.append(Token("string", parts[0][1], self.line, self._tok_col))
        else:
            self.tokens.append(Token("dstring", parts, self.line, self._tok_col))

    def _lex_interp_code(self) -> str:
        # positioned at '#{'
        self.pos += 2
        depth = 1
        start = self.pos
        while self.pos < len(self.source):
            ch = self.source[self.pos]
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth == 0:
                    code = self.source[start:self.pos]
                    self.pos += 1
                    return code
            elif ch == "\n":
                self.line += 1
                self.line_start = self.pos + 1
            self.pos += 1
        raise self.error("unterminated string interpolation")

    def _lex_symbol(self) -> None:
        self.pos += 1
        for op in self._SYMBOL_OPERATORS:
            if self.source.startswith(op, self.pos):
                self.tokens.append(Token("symbol", op, self.line, self._tok_col))
                self.pos += len(op)
                return
        if self._peek() == '"':
            # :"quoted symbol"
            self._lex_dstring()
            token = self.tokens.pop()
            if token.kind != "string":
                raise self.error("interpolated symbols are not supported")
            self.tokens.append(Token("symbol", token.value, self.line, self._tok_col))
            return
        start = self.pos
        # ivar/gvar symbols: :@data, :@@count, :$db
        while self._peek() in ("@", "$"):
            self.pos += 1
        while self._peek().isalnum() or self._peek() == "_":
            self.pos += 1
        if self._peek() in ("?", "!"):
            self.pos += 1
        elif self._peek() == "=" and self._peek(1) not in (">", "="):
            self.pos += 1
        self.tokens.append(Token("symbol", self.source[start:self.pos], self.line, self._tok_col))

    def _lex_ivar(self) -> None:
        self.pos += 1
        if self._peek() == "@":
            self.pos += 1
            prefix = "@@"
        else:
            prefix = "@"
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self.pos += 1
        name = self.source[start:self.pos]
        if not name:
            raise self.error("bad instance variable name")
        self.tokens.append(Token("ivar", prefix + name, self.line, self._tok_col))

    def _lex_gvar(self) -> None:
        self.pos += 1
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self.pos += 1
        name = self.source[start:self.pos]
        if not name:
            raise self.error("bad global variable name")
        self.tokens.append(Token("gvar", "$" + name, self.line, self._tok_col))

    def _lex_word(self) -> None:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self.pos += 1
        # method-name suffixes ? and ! — but not when the next char makes a
        # two-char operator (a != b) or begins a chain (x!.y is not a name)
        if self._peek() in ("?", "!") and self._peek(1) not in (".", "=", "~"):
            self.pos += 1
        word = self.source[start:self.pos]
        line = self.line
        if word in KEYWORDS:
            self.tokens.append(Token("kw", word, line, self._tok_col))
        elif word[0].isupper():
            # Allow namespaced constants (ActiveRecord::Base)
            while self.source.startswith("::", self.pos) and self._peek(2).isalpha():
                self.pos += 2
                while self._peek().isalnum() or self._peek() == "_":
                    self.pos += 1
                word = self.source[start:self.pos]
            self.tokens.append(Token("const", word, line, self._tok_col))
        else:
            self.tokens.append(Token("ident", word, line, self._tok_col))

    def _lex_operator(self) -> None:
        for op in OPERATORS:
            if self.source.startswith(op, self.pos):
                self.tokens.append(Token("op", op, self.line, self._tok_col))
                self.pos += len(op)
                return
        raise self.error(f"unexpected character {self.source[self.pos]!r}")
