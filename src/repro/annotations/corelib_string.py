"""Comp type annotations for String (paper: 114 definitions).

Const string types (§2.2) make string operations precise: operations on
never-mutated strings fold at the type level (``'a' + 'b'`` has type
``'ab'``), which is what lets the SQL checker see query text (§2.3).
Mutators are impure, triggering the weak promotion of const strings back to
``String`` (§4).
"""

from __future__ import annotations

from repro.annotations.sigs import install_table


def _fold(op: str) -> str:
    return f"() -> «str_fold_unary(tself, :{op})»/String"


STRING_SIGS: dict[str, object] = {
    # basics
    "+": "(t<:String) -> «str_concat_type(tself, t)»/String",
    "*": "(t<:Integer) -> «str_mult_type(tself, t)»/String",
    "%": "(Object) -> String",
    "==": "(Object) -> %bool",
    "!=": "(Object) -> %bool",
    "eql?": "(Object) -> %bool",
    "<": "(String) -> %bool",
    ">": "(String) -> %bool",
    "<=": "(String) -> %bool",
    ">=": "(String) -> %bool",
    "<=>": "(Object) -> Integer or nil",
    "length": "() -> «str_length_type(tself)»/Integer",
    "size": "() -> «str_length_type(tself)»/Integer",
    "bytesize": "(*targs<:Object) -> «str_fold_call(tself, :bytesize, targs)»/Integer",
    "empty?": "() -> «str_empty_type(tself)»/%bool",
    "hash": "() -> Integer",
    # element access
    # RDL's String#[] returns String (nil only out of bounds; RDL accepts this)
    "[]": ["(Integer) -> String", "(Integer, Integer) -> String",
           "(String) -> String or nil"],
    "slice": ["(Integer) -> String", "(Integer, Integer) -> String"],
    "[]=": "(Object, String) -> String",
    "chr": "(*targs<:Object) -> «str_fold_call(tself, :chr, targs)»/String",
    "ord": "(*targs<:Object) -> «str_fold_call(tself, :ord, targs)»/Integer",
    # case
    "upcase": _fold("upcase"),
    "downcase": _fold("downcase"),
    "capitalize": _fold("capitalize"),
    "swapcase": _fold("swapcase"),
    "upcase!": "() -> self or nil",
    "downcase!": "() -> self or nil",
    "capitalize!": "() -> self or nil",
    "swapcase!": "() -> self or nil",
    "casecmp": "(String) -> Integer",
    "casecmp?": "(t<:String, *targs<:Object) -> «str_fold_call(tself, :casecmp?, Tuple.new(t))»/%bool",
    # whitespace
    "strip": _fold("strip"),
    "lstrip": _fold("lstrip"),
    "rstrip": _fold("rstrip"),
    "strip!": "() -> self or nil",
    "lstrip!": "() -> self or nil",
    "rstrip!": "() -> self or nil",
    "chomp": _fold("chomp"),
    "chomp!": "() -> self or nil",
    "chop": _fold("chop"),
    "chop!": "() -> self or nil",
    "squeeze": "(*targs<:Object) -> «str_fold_call(tself, :squeeze, targs)»/String",
    # search
    "include?": "(t<:String, *targs<:Object) -> «str_fold_call(tself, :include?, Tuple.new(t))»/%bool",
    "start_with?": "(*targs<:String) -> «str_fold_call(tself, :start_with?, targs)»/%bool",
    "end_with?": "(*targs<:String) -> «str_fold_call(tself, :end_with?, targs)»/%bool",
    "index": "(t<:String, *targs<:Integer) -> «str_fold_call(tself, :index, Tuple.new(t))»/Integer or nil",
    "rindex": "(t<:String, *targs<:Object) -> «str_fold_call(tself, :rindex, Tuple.new(t))»/Integer or nil",
    "count": "(t<:String, *targs<:Object) -> «str_fold_call(tself, :count, Tuple.new(t))»/Integer",
    "match": "(String) -> String or nil",
    "match?": "(String) -> %bool",
    "=~": "(String) -> Integer or nil",
    "scan": "(String) -> Array<String>",
    # substitution (non-mutating)
    "sub": ["(t<:String, u<:String, *targs<:Object) -> «str_fold_call(tself, :sub, Tuple.new(t, u))»/String",
            "(String) { (String) -> String } -> String"],
    "gsub": ["(t<:String, u<:String, *targs<:Object) -> «str_fold_call(tself, :gsub, Tuple.new(t, u))»/String",
             "(String) { (String) -> String } -> String"],
    "tr": "(t<:String, u<:String, *targs<:Object) -> «str_fold_call(tself, :tr, Tuple.new(t, u))»/String",
    "delete": "(t<:String, *targs<:Object) -> «str_fold_call(tself, :delete, Tuple.new(t))»/String",
    "delete_prefix": "(t<:String, *targs<:Object) -> «str_fold_call(tself, :delete_prefix, Tuple.new(t))»/String",
    "delete_suffix": "(t<:String, *targs<:Object) -> «str_fold_call(tself, :delete_suffix, Tuple.new(t))»/String",
    # mutation (promotes const strings, §4)
    "sub!": "(String, String) -> self or nil",
    "gsub!": "(String, String) -> self or nil",
    "<<": "(Object) -> self",
    "concat": "(*Object) -> self",
    "replace": "(String) -> self",
    "insert": "(Integer, String) -> self",
    "prepend": "(String) -> self",
    "clear": "() -> self",
    "center": "(Integer, ?String) -> String",
    "ljust": "(Integer, ?String) -> String",
    "rjust": "(Integer, ?String) -> String",
    "succ": "(*targs<:Object) -> «str_fold_call(tself, :succ, targs)»/String",
    "next": "(*targs<:Object) -> «str_fold_call(tself, :next, targs)»/String",
    # conversion
    "to_s": "() -> «tself»/String",
    "to_str": "() -> «tself»/String",
    "to_sym": "() -> «str_to_sym_type(tself)»/Symbol",
    "intern": "() -> «str_to_sym_type(tself)»/Symbol",
    "to_i": "() -> «str_to_i_type(tself)»/Integer",
    "to_f": "() -> Float",
    "inspect": "() -> String",
    "reverse": _fold("reverse"),
    "reverse!": "() -> self",
    "hex": "(*targs<:Object) -> «str_fold_call(tself, :hex, targs)»/Integer",
    "oct": "(*targs<:Object) -> «str_fold_call(tself, :oct, targs)»/Integer",
    "freeze": "() -> self",
    "frozen?": "() -> %bool",
    "dup": "() -> String",
    "clone": "() -> String",
    # splitting
    "split": "(?String, ?Integer) -> Array<String>",
    "chars": "() -> Array<String>",
    "bytes": "() -> Array<Integer>",
    "lines": "() -> Array<String>",
    "each_char": "() { (String) -> Object } -> self",
    "each_line": "() { (String) -> Object } -> self",
    "partition": "(String) -> [String, String, String]",
    "rpartition": "(String) -> [String, String, String]",
}


def install(rdl) -> dict[str, int]:
    return install_table(rdl, "String", STRING_SIGS)
