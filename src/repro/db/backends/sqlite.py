"""A real ``sqlite3`` storage engine behind the ``Database`` façade.

Schemas are never hand-maintained here: after every DDL statement the
affected table is re-introspected with ``PRAGMA table_info``, so the
``TableSchema`` objects the comp types consult always describe what the
engine itself reports — including for databases this process did not
create (``Database.attach(path)``).

Migrations translate to real DDL:

* ``create_table``  → ``CREATE TABLE``
* ``drop_table``    → ``DROP TABLE``
* ``rename_table``  → ``ALTER TABLE ... RENAME TO``
* ``add_column``    → ``ALTER TABLE ... ADD COLUMN``
* ``drop_column``   → ``ALTER TABLE ... DROP COLUMN``
* ``rename_column`` → ``ALTER TABLE ... RENAME COLUMN ... TO``

Row parity with the memory backend (what the parity suite asserts):
values round-trip by *declared* column type — booleans come back as
booleans, not 0/1 — and columns a row never set are omitted from the
returned dict (the memory backend's rows simply lack those keys; every
consumer reads rows with ``dict.get``, so NULL-vs-absent is unobservable).

Connections are process-local and deliberately unpicklable: the parallel
worker protocol ships the backend *name* (plus a path for on-disk files)
and each worker opens its own connection.
"""

from __future__ import annotations

import sqlite3
from typing import Callable

from repro.db.backends.base import StorageBackend
from repro.obs.spans import span

#: repro column kind → sqlite declared type.  The declared names are chosen
#: so the reverse mapping below is a bijection for our kinds *and* each
#: name lands in the right sqlite type-affinity class (VARCHAR → TEXT, so
#: numeric-looking strings are not coerced to numbers on insert).
_KIND_TO_SQL = {
    "integer": "INTEGER",
    "string": "VARCHAR",
    "text": "TEXT",
    "boolean": "BOOLEAN",
    "float": "DOUBLE",
    "datetime": "DATETIME",
}

_SQL_TO_KIND = {sql: kind for kind, sql in _KIND_TO_SQL.items()}


def kind_from_declared(declared: str) -> str:
    """Map a sqlite declared column type back to a repro column kind.

    Exact matches cover everything this backend itself creates; the
    substring fallbacks (modelled on sqlite's own affinity rules) cover
    attached databases created by other tools (``VARCHAR(255)``,
    ``NUMERIC``, ``INTEGER PRIMARY KEY`` ...).
    """
    normalized = (declared or "").strip().upper()
    if normalized in _SQL_TO_KIND:
        return _SQL_TO_KIND[normalized]
    if "INT" in normalized:
        return "integer"
    if "BOOL" in normalized:
        return "boolean"
    if "CHAR" in normalized or "CLOB" in normalized:
        return "string"
    if "TEXT" in normalized:
        return "text"
    if "REAL" in normalized or "FLOA" in normalized or "DOUB" in normalized:
        return "float"
    if "DATE" in normalized or "TIME" in normalized:
        return "datetime"
    # sqlite's own fallback affinity is NUMERIC; for schema types the
    # safest conservative kind is string
    return "string"


def _quote(identifier: str) -> str:
    """Quote an identifier for DDL/DML (doubling embedded quotes)."""
    return '"' + identifier.replace('"', '""') + '"'


class SqliteBackend(StorageBackend):
    """Schema + row storage in a sqlite database (file or ``:memory:``)."""

    name = "sqlite"

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self.conn = sqlite3.connect(path)
        # TableSchema mirror, rebuilt from PRAGMA after every DDL; dict
        # order tracks creation order (renames re-append, like the memory
        # backend's pop/reinsert)
        self._schemas: dict = {}
        for table in self._table_names():
            self._schemas[table] = self._introspect(table)

    # -- introspection -----------------------------------------------------
    def _table_names(self) -> list[str]:
        cursor = self.conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' "
            "AND name NOT LIKE 'sqlite_%' ORDER BY rowid")
        return [row[0] for row in cursor.fetchall()]

    def _introspect(self, table: str):
        """One table's schema, as sqlite reports it (``PRAGMA table_info``)."""
        from repro.db.schema import Column, TableSchema

        with span("db.sqlite.introspect", label=table):
            info = self.conn.execute(
                f"PRAGMA table_info({_quote(table)})").fetchall()
        columns = {
            name: Column(name, kind_from_declared(declared))
            for (_cid, name, declared, _notnull, _default, _pk) in info
        }
        return TableSchema(table, columns)

    def _refresh(self, table: str) -> None:
        self._schemas[table] = self._introspect(table)

    # -- schema ------------------------------------------------------------
    @property
    def tables(self):
        return self._schemas

    def create_table(self, table, columns) -> None:
        defs = ", ".join(
            f"{_quote(column.name)} {_KIND_TO_SQL.get(column.kind, 'VARCHAR')}"
            for column in columns
        )
        with span("db.sqlite.ddl", label=f"create_table {table}"):
            self.conn.execute(f"CREATE TABLE {_quote(table)} ({defs})")
            self.conn.commit()
        self._refresh(table)

    def drop_table(self, table) -> None:
        self.conn.execute(f"DROP TABLE IF EXISTS {_quote(table)}")
        self.conn.commit()
        self._schemas.pop(table, None)

    def rename_table(self, table, new_name) -> None:
        self.conn.execute(
            f"ALTER TABLE {_quote(table)} RENAME TO {_quote(new_name)}")
        self.conn.commit()
        self._schemas.pop(table, None)
        self._refresh(new_name)

    def add_column(self, table, column) -> None:
        declared = _KIND_TO_SQL.get(column.kind, "VARCHAR")
        self.conn.execute(
            f"ALTER TABLE {_quote(table)} "
            f"ADD COLUMN {_quote(column.name)} {declared}")
        self.conn.commit()
        self._refresh(table)

    def drop_column(self, table, column) -> None:
        if column not in self._schemas[table].columns:
            return
        self.conn.execute(
            f"ALTER TABLE {_quote(table)} DROP COLUMN {_quote(column)}")
        self.conn.commit()
        self._refresh(table)

    def rename_column(self, table, column, new_name) -> None:
        self.conn.execute(
            f"ALTER TABLE {_quote(table)} "
            f"RENAME COLUMN {_quote(column)} TO {_quote(new_name)}")
        self.conn.commit()
        self._refresh(table)

    # -- rows --------------------------------------------------------------
    def insert(self, table, row) -> None:
        if not row:
            self.conn.execute(f"INSERT INTO {_quote(table)} DEFAULT VALUES")
        else:
            names = list(row)
            placeholders = ", ".join("?" for _ in names)
            quoted = ", ".join(_quote(name) for name in names)
            self.conn.execute(
                f"INSERT INTO {_quote(table)} ({quoted}) "
                f"VALUES ({placeholders})",
                [row[name] for name in names])
        self.conn.commit()

    def all_rows(self, table) -> list[dict]:
        return [row for _rowid, row in self._rows_with_ids(table)]

    def _rows_with_ids(self, table) -> list[tuple[int, dict]]:
        """(rowid, row-dict) pairs in insertion order, values converted
        back to Python by declared column kind, NULL columns omitted."""
        schema = self._schemas.get(table)
        if schema is None:
            return []
        names = list(schema.columns)
        if not names:
            return []
        quoted = ", ".join(_quote(name) for name in names)
        cursor = self.conn.execute(
            f"SELECT rowid, {quoted} FROM {_quote(table)} ORDER BY rowid")
        out = []
        for fetched in cursor.fetchall():
            rowid, values = fetched[0], fetched[1:]
            row = {}
            for name, value in zip(names, values):
                if value is None:
                    continue
                if schema.columns[name].kind == "boolean" and \
                        isinstance(value, int):
                    value = bool(value)
                row[name] = value
            out.append((rowid, row))
        return out

    def update_rows(self, table, predicate: Callable[[dict], bool],
                    updates: dict) -> int:
        if table not in self._schemas:
            raise KeyError(table)
        matching = [rowid for rowid, row in self._rows_with_ids(table)
                    if predicate(row)]
        if matching and updates:
            assignments = ", ".join(
                f"{_quote(name)} = ?" for name in updates)
            placeholders = ", ".join("?" for _ in matching)
            self.conn.execute(
                f"UPDATE {_quote(table)} SET {assignments} "
                f"WHERE rowid IN ({placeholders})",
                [*updates.values(), *matching])
            self.conn.commit()
        return len(matching)

    def delete_rows(self, table, predicate: Callable[[dict], bool]) -> int:
        if table not in self._schemas:
            raise KeyError(table)
        matching = [rowid for rowid, row in self._rows_with_ids(table)
                    if predicate(row)]
        if matching:
            placeholders = ", ".join("?" for _ in matching)
            self.conn.execute(
                f"DELETE FROM {_quote(table)} "
                f"WHERE rowid IN ({placeholders})", matching)
            self.conn.commit()
        return len(matching)

    def clear(self, table=None) -> None:
        # an unknown table is a no-op, matching the memory backend
        targets = list(self._schemas) if table is None else \
            [table] if table in self._schemas else []
        for target in targets:
            self.conn.execute(f"DELETE FROM {_quote(target)}")
        self.conn.commit()

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        self.conn.close()

    def __getstate__(self):  # pragma: no cover - exercised by pickle
        raise TypeError(
            "SqliteBackend holds a live sqlite3 connection and cannot be "
            "pickled; ship the backend name (and file path) and reopen it "
            "in the receiving process — see repro.parallel.protocol")
