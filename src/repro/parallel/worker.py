"""The worker side of the parallel checking protocol.

Runs inside a spawn-mode child process (every function here must be
importable from a fresh interpreter — no closures, no inherited state).

Two service styles share the checking loop:

* **one-shot** (:func:`run_shard`): the worker receives a
  :class:`ShardTask`, rebuilds each subject app named by the shard's
  labels from scratch (the cold-check contract: workers verify pristine
  universes, exactly what a serial cold check of the same app sees), runs
  ``TypeChecker.check_one`` for every method in shard order, and ships
  back picklable verdicts together with the dependency footprints the
  checker recorded — so the parent can back-feed its incremental
  dependency graph.

* **session** (:func:`session_main`): a stateful dispatch loop over a
  pipe, keyed by session id.  ``AttachUniverse`` builds live label
  universes once; ``SessionDelta`` replays schema-journal events and
  post-build load records against them (journal-replay parity: after a
  delta the replica's generation and ``schema_hash()`` equal the
  engine's); ``CheckRequest`` re-checks a method slice against the warm
  replicas — no rebuild, which is what makes a post-migration
  ``recheck_dirty`` round cheap at ``workers > 1``.  The loop also serves
  plain :class:`ShardTask` messages, so a session worker can stand in for
  a cold fleet worker.
"""

from __future__ import annotations

import os
import time

from repro.incremental.versioning import SchemaEvent
from repro.obs import faults as obs_faults
from repro.obs import provenance as obs_prov
from repro.obs import spans as obs_spans

_FAULTS_ON = obs_faults.ENABLED  # cached cell: zero-cost guard when off
from repro.parallel.protocol import (
    AttachAck,
    AttachUniverse,
    CheckRequest,
    DeltaAck,
    DetachAck,
    DetachSession,
    MethodVerdict,
    SessionDelta,
    SessionError,
    ShardResult,
    ShardTask,
    Shutdown,
    encode_error,
)


def _trace_begin(message) -> int | None:
    """Set this process's tracing state from the request and return the
    span-buffer mark to drain from, or ``None`` when tracing is off.

    Workers are spawned, so they inherit the *environment* but not the
    parent's flag — each request re-derives the state from its ``trace``
    field (the engine stamps it with its own flag) or ``REPRO_TRACE``.
    The mark keeps an in-process call (``workers == 1`` fallback) from
    draining spans the caller recorded before this request.

    The provenance flag is re-derived the same way (``provenance`` field /
    ``REPRO_PROVENANCE``), so per-verdict attribution in
    :func:`check_specs_into` follows each request.
    """
    obs_spans.set_enabled(bool(getattr(message, "trace", False))
                          or obs_spans.env_enabled())
    obs_prov.set_enabled(bool(getattr(message, "provenance", False))
                         or obs_prov.env_enabled())
    return obs_spans.mark() if obs_spans.enabled() else None


def _trace_end(reply, mark: int | None):
    """Move this request's spans onto the reply (which pickles home)."""
    if mark is not None:
        reply.spans = tuple(obs_spans.drain(mark))
    return reply


# ---------------------------------------------------------------------------
# warm replica catalog: cold builds seed later rounds and session attaches
# ---------------------------------------------------------------------------

#: label universes built pristine by cold shards / prebuild tasks, kept for
#: reuse by later shards and *taken* by session attaches in this process —
#: the cold fleet and the warm sessions build the same apps, so one replica
#: set serves both.  Keyed by (label, backend name, interp mode, membership
#: mode): the env axes change checking behaviour, and a replica must never
#: cross them.
_WARM_CATALOG: dict[tuple, object] = {}

#: catalog participation is opt-in per process: only session workers flip
#: this on (in :func:`session_main`).  The parent process also runs
#: :func:`run_shard` in-process (``workers == 1`` fallback paths), where a
#: process-lifetime universe cache would leak state across independent
#: engines and tests.
_CATALOG_ENABLED = [False]


def _catalog_key(label: str, backend: str | None) -> tuple:
    from repro.db.backends import default_backend_name

    return (
        label,
        backend or default_backend_name(),
        os.environ.get("REPRO_INTERP", "") or "compiled",
        os.environ.get("REPRO_MEMBERSHIP", "") or "compiled",
    )


def _catalog_reusable(rdl) -> bool:
    """Only pristine replicas may be shared: same guard family as the
    engine's attach path (generation == pristine, epoch 1, no post-build
    definitions or loads)."""
    return (
        getattr(rdl, "pristine_generation", None) == rdl.db.version
        and getattr(rdl, "pristine_epoch", 0) == 1
        and not getattr(rdl, "post_build_methods", None)
        and not getattr(rdl, "post_build_loads", None)
    )


def _catalog_peek(label: str, backend: str | None):
    """A cataloged pristine replica for reuse in place, or ``None``."""
    if not _CATALOG_ENABLED[0]:
        return None
    key = _catalog_key(label, backend)
    rdl = _WARM_CATALOG.get(key)
    if rdl is None:
        return None
    if not _catalog_reusable(rdl):
        del _WARM_CATALOG[key]  # diverged somehow: never serve it again
        return None
    obs_spans.bump("sessions.catalog_hits")
    return rdl


def _catalog_take(label: str, backend: str | None):
    """Remove and return a cataloged pristine replica (session attaches
    mutate their replicas via deltas, so adoption is exclusive)."""
    rdl = _catalog_peek(label, backend)
    if rdl is not None:
        del _WARM_CATALOG[_catalog_key(label, backend)]
    return rdl


def _catalog_put(label: str, backend: str | None, rdl) -> None:
    if _CATALOG_ENABLED[0] and _catalog_reusable(rdl):
        _WARM_CATALOG[_catalog_key(label, backend)] = rdl


def warm_up(token: int = 0) -> int:
    """Force the child to import and exercise the full checking stack (one
    throwaway app build + check), so the first real shard measures checking
    rather than one-time module-import and code-warm-up latency."""
    from repro.apps import all_apps

    app = min(all_apps(), key=lambda a: a.source_loc())
    rdl = app.build()
    rdl.check(app.label)
    # warm-up work is deliberately untraced: drop anything recorded (an
    # inherited REPRO_TRACE enables spans before the first real request)
    obs_spans.drain(0)
    # linger briefly: the pool feeds tasks from one shared queue, and
    # without overlap a fast first worker could swallow several warm-up
    # tokens while its siblings are still spawning (leaving them cold)
    time.sleep(0.2)
    return token


def run_shard(task: ShardTask) -> ShardResult:
    """Check one shard and return its verdicts (the spawn entry point)."""
    from repro.apps import app_for_label

    trace_mark = _trace_begin(task)
    result = ShardResult(shard_id=task.shard_id, pid=os.getpid())
    universes: dict[str, object] = {}

    def resolve(label: str):
        rdl = universes.get(label)
        if rdl is None:
            build_start = time.perf_counter()
            rdl = _catalog_peek(label, task.backend)
            if rdl is None:
                rdl = app_for_label(label).build(backend=task.backend)
                _catalog_put(label, task.backend, rdl)
            result.build_s[label] = time.perf_counter() - build_start
            result.db_versions[label] = rdl.db.version
            universes[label] = rdl
        return rdl

    with obs_spans.span("shard.run", label=f"shard{task.shard_id}") as sp:
        sp.set("methods", len(task.specs))
        for label in getattr(task, "prebuild", ()):
            resolve(label)
        check_specs_into(result, resolve, task.specs)
    return _trace_end(result, trace_mark)


# ---------------------------------------------------------------------------
# session service: a stateful dispatch loop keyed by session id
# ---------------------------------------------------------------------------

def session_main(conn) -> None:
    """Serve session messages over ``conn`` until shutdown or EOF.

    The spawn entry point for warm workers.  All state — the live label
    universes, keyed by session id — lives in this loop's locals; a reply
    is sent for every request (``SessionError`` on failure, so one bad
    request never wedges the engine), and the loop only exits on
    :class:`Shutdown`, a closed pipe, or a dead parent.
    """
    sessions: dict[str, dict[str, object]] = {}
    # session workers are long-lived, single-session-at-a-time processes:
    # the warm replica catalog is safe (and is the whole point — a cold
    # shard's builds seed the next attach)
    _CATALOG_ENABLED[0] = True
    # spawn children inherit env, not the parent's cells: re-arm any
    # injected faults published through REPRO_FAULTS (fuzz harness)
    obs_faults.load_env()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if isinstance(message, Shutdown):
            break
        try:
            if _FAULTS_ON[0]:
                # inside the try: an `error` fault becomes a SessionError
                # reply, a `wedge` delays the reply past the engine's recv
                # deadline, a `die` kills this process mid-conversation
                obs_faults.fire(f"worker.{type(message).__name__}")
            reply = _serve(sessions, message)
        except Exception as exc:  # noqa: BLE001 — ship it, keep serving
            reply = SessionError(
                session_id=getattr(message, "session_id", ""),
                request=type(message).__name__,
                error=f"{type(exc).__name__}: {exc}",
            )
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


def _serve(sessions: dict, message):
    if isinstance(message, AttachUniverse):
        return _attach(sessions, message)
    if isinstance(message, SessionDelta):
        return _apply_delta(sessions, message)
    if isinstance(message, CheckRequest):
        return _check_session(sessions, message)
    if isinstance(message, DetachSession):
        sessions.pop(message.session_id, None)
        return DetachAck(session_id=message.session_id)
    if isinstance(message, ShardTask):
        return run_shard(message)  # the one-shot vocabulary still works
    raise TypeError(f"unknown session message {type(message).__name__}")


def _attach(sessions: dict, message: AttachUniverse) -> AttachAck:
    from repro.apps import app_for_label

    trace_mark = _trace_begin(message)
    replicas: dict[str, object] = {}
    ack = AttachAck(session_id=message.session_id, pid=os.getpid())
    with obs_spans.span("session.attach", label=message.session_id) as sp:
        sp.set("labels", len(message.labels))
        for label in message.labels:
            build_start = time.perf_counter()
            # adopt a cataloged pristine replica when one exists (built by
            # an earlier cold shard or prebuild in this process) — the ack
            # still reports its generation, so the engine's pristine
            # assertion guards the reuse exactly like a fresh build
            rdl = _catalog_take(label, message.backend)
            if rdl is None:
                rdl = app_for_label(label).build(backend=message.backend)
            ack.build_s[label] = time.perf_counter() - build_start
            ack.generations[label] = rdl.db.version
            replicas[label] = rdl
    # replace atomically: a re-attach (crash recovery, journal gap) must
    # not leave a half-updated session behind a failed build
    sessions[message.session_id] = replicas
    return _trace_end(ack, trace_mark)


def _session_of(sessions: dict, session_id: str) -> dict:
    session = sessions.get(session_id)
    if session is None:
        raise KeyError(f"no attached session {session_id!r} "
                       f"(worker pid {os.getpid()} was restarted?)")
    return session


def _apply_delta(sessions: dict, message: SessionDelta) -> DeltaAck:
    trace_mark = _trace_begin(message)
    session = _session_of(sessions, message.session_id)
    events = [SchemaEvent.from_wire(record) for record in message.events]
    ack = DeltaAck(session_id=message.session_id, pid=os.getpid())
    with obs_spans.span("session.delta", label=message.session_id) as sp:
        sp.set("events", len(events))
        sp.set("loads", len(message.loads))
        try:
            for rdl in session.values():
                # replicas already past some events skip them, so report the
                # most any replica applied (not a per-replica overwrite or a
                # sum)
                ack.events_applied = max(ack.events_applied,
                                         rdl.db.replay(events))
            for source in message.loads:
                for rdl in session.values():
                    rdl.load(source)
                ack.loads_applied += 1
        except Exception:
            # a partial replay leaves replicas half-migrated; they must
            # never serve another request, so poison the whole session —
            # the next round's request errors ("no attached session"),
            # forcing a cold re-attach instead of replaying onto divergent
            # state
            sessions.pop(message.session_id, None)
            raise
    ack.generations = {
        label: rdl.db.version for label, rdl in session.items()
    }
    return _trace_end(ack, trace_mark)


def _check_session(sessions: dict, message: CheckRequest) -> ShardResult:
    trace_mark = _trace_begin(message)
    session = _session_of(sessions, message.session_id)
    result = ShardResult(shard_id=message.shard_id, pid=os.getpid())

    def resolve(label: str):
        rdl = session.get(label)
        if rdl is None:
            raise KeyError(f"session {message.session_id!r} has no replica "
                           f"for label {label!r}")
        result.db_versions[label] = rdl.db.version
        return rdl

    with obs_spans.span("session.check", label=message.session_id) as sp:
        sp.set("methods", len(message.specs))
        check_specs_into(result, resolve, message.specs)
    return _trace_end(result, trace_mark)


def check_specs_into(result: ShardResult, resolve, specs) -> None:
    """Check ``specs`` in order, appending verdicts to ``result``;
    ``resolve(label)`` supplies the universe to check against.  This loop
    is the single place the verdict wire format is produced."""
    cpu_start = time.process_time()
    prov_on = obs_prov.enabled()
    for spec in specs:
        rdl = resolve(spec.label)
        # per-verdict comp-cache attribution rides the always-on stats
        # counters; one delta per *method* stays far off the comp microloop
        cap = obs_prov.capture(rdl.checker.engine.stats)
        check_start = time.perf_counter()
        with cap:
            desc, errors, casts, oracle = rdl.checker.check_one(
                spec.class_name, spec.method_name, spec.static)
        cost = time.perf_counter() - check_start
        result.check_s += cost
        result.verdicts.append(MethodVerdict(
            spec=spec,
            desc=desc,
            errors=[encode_error(e) for e in errors],
            casts_used=casts,
            oracle_casts=oracle,
            deps=rdl.checker.engine.deps.deps_of(spec.key()),
            cost_s=cost,
            prov=((cap.comp_hits, cap.comp_misses) if prov_on else None),
        ))
    result.cpu_s += time.process_time() - cpu_start
