"""Huginn benchmark: web-monitoring agents Rails app (7 methods, §5.2).

Agents monitor the web and emit events whose payloads are JSON — the
checked methods mix ActiveRecord queries with payload-hash handling
(Table 2: Casts = 3).
"""

from repro.apps.base import SubjectApp
from repro.db.schema import Database

_SOURCE = '''
class Agent < ActiveRecord::Base
  has_many :events

  type "() -> Array<String>", typecheck: :huginn
  def self.working_names
    Agent.where({ disabled: false }).pluck(:name)
  end

  type "(String) -> %bool", typecheck: :huginn
  def self.scheduled?(cron)
    Agent.exists?({ schedule: cron, disabled: false })
  end

  type "() -> Integer", typecheck: :huginn
  def self.total_event_count
    Agent.where({ disabled: false }).sum(:events_count)
  end

  type "() -> %bool", typecheck: :huginn
  def working?
    !disabled && events_count > 0
  end

  type "(String) -> Event", typecheck: :huginn
  def self.receive_web_request(payload)
    data = RDL.type_cast(JSON.parse(payload), "{ agent_id: Integer, body: String, status: Integer }")
    Event.create({ agent_id: data[:agent_id], payload: data[:body], status: data[:status] })
  end
end

class Event < ActiveRecord::Base
  type "(Integer) -> Array<String>", typecheck: :huginn
  def self.payloads_for(aid)
    Event.where({ agent_id: aid }).pluck(:payload)
  end

  type "(String) -> String", typecheck: :huginn
  def self.extract_message(raw)
    parsed = RDL.type_cast(JSON.parse(raw), "{ message: String, level: String }")
    level = parsed[:level]
    message = RDL.type_cast(parsed[:message], "String")
    level.upcase + ": " + message
  end
end
'''

_TESTS = '''
out = []
out << Agent.working_names.length
out << Agent.scheduled?("0 * * * *")
out << Agent.total_event_count
agent = Agent.find(1)
out << agent.working?
out << Agent.receive_web_request('{"agent_id": 1, "body": "ping", "status": 200}')
out << Event.payloads_for(1).length
out << Event.extract_message('{"message": "site is up", "level": "info"}')
out.length
'''


def _setup(db: Database) -> None:
    db.create_table("agents", name="string", schedule="string",
                    disabled="boolean", user_id="integer",
                    events_count="integer")
    db.create_table("events", agent_id="integer", payload="string",
                    status="integer")
    db.declare_association("agents", "events")
    db.insert("agents", {"name": "weather watcher", "schedule": "0 * * * *",
                         "disabled": False, "user_id": 1, "events_count": 4})
    db.insert("agents", {"name": "rss poller", "schedule": "*/5 * * * *",
                         "disabled": True, "user_id": 1, "events_count": 0})
    db.insert("events", {"agent_id": 1, "payload": "sunny", "status": 200})


HUGINN = SubjectApp(
    name="Huginn",
    label="huginn",
    source=_SOURCE,
    setup_db=_setup,
    test_suite=_TESTS,
    expected_errors=0,
    paper={"methods": 7, "loc": 54, "casts": 3, "casts_rdl": 6, "errors": 0},
)
