"""λC type checking rules Γ ⊢ e : A (Fig. 10) and program checking (Fig. 11).

These are the *pure* rules (no rewriting) used in the soundness statement;
:mod:`repro.lambdac.checkgen` implements the ↪ rules that also insert
checked calls.
"""

from __future__ import annotations

from repro.lambdac.syntax import (
    Call,
    CheckedCall,
    ClassTable,
    CompSig,
    Eq,
    Expr,
    If,
    LibMethod,
    New,
    SelfE,
    Seq,
    TSelfE,
    UserMethod,
    Val,
    VBool,
    VClassId,
    VNil,
    VObj,
    Var,
)


class LCTypeError(Exception):
    """λC static type error."""


def type_of_val(value) -> str:
    if isinstance(value, VNil):
        return "Nil"
    if isinstance(value, VBool):
        return "True" if value.value else "False"
    if isinstance(value, VClassId):
        return "Type"
    if isinstance(value, VObj):
        return value.class_name
    raise LCTypeError(f"not a value: {value!r}")


def type_check(table: ClassTable, e: Expr, env: dict[str, str] | None = None) -> str:
    """Γ ⊢CT e : A."""
    env = env or {}
    # T-Nil / T-True / T-False / T-Type / T-Obj
    if isinstance(e, Val):
        return type_of_val(e.value)
    # T-Var
    if isinstance(e, Var):
        if e.name not in env:
            raise LCTypeError(f"unbound variable {e.name}")
        return env[e.name]
    # T-Self / T-TSelf
    if isinstance(e, SelfE):
        if "self" not in env:
            raise LCTypeError("self not in scope")
        return env["self"]
    if isinstance(e, TSelfE):
        if "tself" not in env:
            raise LCTypeError("tself not in scope")
        return env["tself"]
    # T-New
    if isinstance(e, New):
        return e.class_name
    # T-Seq
    if isinstance(e, Seq):
        type_check(table, e.first, env)
        return type_check(table, e.second, env)
    # T-Eq
    if isinstance(e, Eq):
        type_check(table, e.left, env)
        type_check(table, e.right, env)
        return "Bool"
    # T-If
    if isinstance(e, If):
        type_check(table, e.cond, env)
        then_t = type_check(table, e.then, env)
        else_t = type_check(table, e.other, env)
        return table.lub(then_t, else_t)
    # T-App (user-defined)
    if isinstance(e, Call):
        recv_t = type_check(table, e.receiver, env)
        method = table.lookup(recv_t, e.method)
        if not isinstance(method, UserMethod):
            raise LCTypeError(
                f"{recv_t}.{e.method} is not a user-defined method "
                f"(library calls must be checked calls)")
        arg_t = type_check(table, e.arg, env)
        if not table.le(arg_t, method.sig.dom):
            raise LCTypeError(
                f"argument of {recv_t}.{e.method} has type {arg_t}, "
                f"expected {method.sig.dom}")
        return method.sig.rng
    # T-App-Lib
    if isinstance(e, CheckedCall):
        recv_t = type_check(table, e.receiver, env)
        method = table.lookup(recv_t, e.method)
        if not isinstance(method, LibMethod):
            raise LCTypeError(f"{recv_t}.{e.method} is not a library method")
        type_check(table, e.arg, env)
        return e.check_type
    raise LCTypeError(f"cannot type {e!r}")


def check_program(table: ClassTable, program) -> None:
    """Fig. 11: check every user method body against its signature (T-PDef)."""
    for method in program.user_methods:
        env = {"self": method.class_name, method.param: method.sig.dom}
        body_t = type_check(table, method.body, env)
        if not table.le(body_t, method.sig.rng):
            raise LCTypeError(
                f"body of {method.class_name}.{method.name} has type "
                f"{body_t}, expected {method.sig.rng}")
