"""Subject app descriptor plus shared support (JSON substrate)."""

from __future__ import annotations

import json as pyjson
from dataclasses import dataclass, field
from typing import Callable

from repro.db.schema import Database
from repro.obs.spans import span
from repro.rtypes.kinds import Sym
from repro.runtime.objects import RArray, RHash, RMethod, RString


@dataclass
class SubjectApp:
    """One Table 2 benchmark: schema, source, tests, expectations."""

    name: str
    label: str
    source: str
    setup_db: Callable[[Database], None] = lambda db: None
    test_suite: str = ""
    expected_errors: int = 0
    # paper's reported numbers, for side-by-side reporting
    paper: dict = field(default_factory=dict)

    def build(self, backend: str | None = None, **kwargs):
        """A fresh CompRDL universe with this app loaded (not yet checked).

        ``backend`` names the storage backend for the app's database
        (``None`` → the ``REPRO_DB_BACKEND`` environment default); the
        checker sees identical schemas and verdicts either way.
        """
        from repro.api import CompRDL

        with span("universe.build", label=self.label) as sp:
            db = Database(backend=backend)
            self.setup_db(db)
            sp.set("backend", db.backend_name)
            rdl = CompRDL(db=db, **kwargs)
            install_json(rdl.interp)
            rdl.load(self.source)
            rdl.mark_pristine()  # everything above is reproducible from scratch
        return rdl

    def source_loc(self) -> int:
        """sloccount-style LoC of the app source (non-blank, non-comment)."""
        return sum(
            1 for line in self.source.splitlines()
            if line.strip() and not line.strip().startswith("#")
        )


def install_json(interp) -> None:
    """A native JSON module: ``JSON.parse`` returns nested hashes/arrays.

    Mirrors the paper's benchmarks, where API clients parse HTTP responses
    and the result needs a ``type_cast`` (§5.3: "Many of these type casts
    were to the result of JSON.parse").
    """
    json_class = interp.define_class("JSON", "Object")

    def parse(i, recv, args, block):
        text = args[0].val if args and isinstance(args[0], RString) else "null"
        try:
            data = pyjson.loads(text)
        except pyjson.JSONDecodeError as exc:
            from repro.runtime.errors import RubyError

            raise RubyError("JSONError", str(exc))
        return _to_runtime(data)

    def generate(i, recv, args, block):
        return RString(pyjson.dumps(_from_runtime(args[0] if args else None)))

    json_class.define("parse", RMethod("parse", native=parse), static=True)
    json_class.define("generate", RMethod("generate", native=generate), static=True)
    if interp.registry is not None:
        interp.registry.annotate("JSON", "parse", "(String) -> %any", static=True)
        interp.registry.annotate("JSON", "generate", "(Object) -> String", static=True)


def _to_runtime(data):
    if isinstance(data, dict):
        return RHash.from_pairs((Sym(k), _to_runtime(v)) for k, v in data.items())
    if isinstance(data, list):
        return RArray([_to_runtime(v) for v in data])
    if isinstance(data, str):
        return RString(data)
    return data


def _from_runtime(value):
    if isinstance(value, RHash):
        return {_key_str(k): _from_runtime(v) for k, v in value.pairs()}
    if isinstance(value, RArray):
        return [_from_runtime(v) for v in value.items]
    if isinstance(value, RString):
        return value.val
    if isinstance(value, Sym):
        return value.name
    return value


def _key_str(key) -> str:
    if isinstance(key, Sym):
        return key.name
    if isinstance(key, RString):
        return key.val
    return str(key)
