"""obs tests flip process-global tracing state; always restore it."""

import pytest

from repro import obs
from repro.runtime.compile import reset_inline_cache_stats


@pytest.fixture(autouse=True)
def _obs_isolation(monkeypatch):
    # a REPRO_TRACE in the environment would re-enable tracing in spawned
    # workers (and in _trace_begin) underneath the disabled-mode tests
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    was_enabled = obs.enabled()
    obs.reset()
    reset_inline_cache_stats()
    yield
    obs.reset()
    reset_inline_cache_stats()
    obs.set_enabled(was_enabled)
