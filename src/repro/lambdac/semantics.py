"""λC small-step dynamic semantics with an explicit stack (Fig. 8).

Configurations are ``⟨E, e, S⟩``.  User-method calls push ``(E, C)`` on the
stack (E-AppUD) and returning a value plugs it back into the saved context
(E-Ret).  Checked library calls ``⌈A⌉v.m(v)`` run the native implementation
and reduce to **blame** when the result is outside ``A`` (E-AppLib) —
λC's encoding of failed dynamic checks.  Invoking a method on ``nil`` also
reduces to blame (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.lambdac.syntax import (
    Call,
    CheckedCall,
    ClassTable,
    Eq,
    Expr,
    If,
    LibMethod,
    New,
    SelfE,
    Seq,
    TSelfE,
    UserMethod,
    Val,
    Value,
    VBool,
    VClassId,
    VNil,
    VObj,
    Var,
    type_of_value,
)


class Blame(Exception):
    """The configuration reduced to blame."""


@dataclass
class Hole:
    """The ■ of an evaluation context."""


# A context is represented as a "rebuild" function zipper: we decompose an
# expression into (redex, plug) where plug(e') rebuilds the expression.

def _decompose(e: Expr):
    """Find the leftmost-innermost redex.  Returns (redex, plug) or None when
    ``e`` is itself a redex or a value."""
    if isinstance(e, Val):
        return None
    for attr, wrap in _subexpr_slots(e):
        sub = getattr(e, attr)
        if not isinstance(sub, Val):
            inner = _decompose(sub)
            if inner is None:
                return sub, _plugger(e, attr)
            redex, plug = inner
            outer_plug = _plugger(e, attr)
            return redex, (lambda new, p=plug, op=outer_plug: op(p(new)))
    return None


def _subexpr_slots(e: Expr):
    if isinstance(e, Seq):
        return [("first", None)]
    if isinstance(e, Eq):
        return [("left", None), ("right", None)]
    if isinstance(e, If):
        return [("cond", None)]
    if isinstance(e, Call):
        return [("receiver", None), ("arg", None)]
    if isinstance(e, CheckedCall):
        return [("receiver", None), ("arg", None)]
    return []


def _plugger(e: Expr, attr: str):
    def plug(new: Expr) -> Expr:
        values = {name: getattr(e, name) for name in e.__dataclass_fields__}
        values[attr] = new
        return type(e)(**values)
    return plug


@dataclass
class MachineResult:
    """Outcome of running the machine: a value, blame, or fuel exhaustion."""

    value: Optional[Value] = None
    blamed: bool = False
    blame_message: str = ""
    diverged: bool = False

    def is_value(self) -> bool:
        return self.value is not None


class Machine:
    """The ⟨E, e, S⟩ ⇝ ⟨E', e', S'⟩ machine."""

    def __init__(self, table: ClassTable):
        self.table = table

    # ------------------------------------------------------------------
    def run(self, e: Expr, env: dict | None = None, fuel: int = 10_000) -> MachineResult:
        """Iterate the step relation until a value, blame, or out of fuel."""
        env = dict(env or {})
        stack: list[tuple[dict, object]] = []
        try:
            for _ in range(fuel):
                if isinstance(e, Val) and not stack:
                    return MachineResult(value=e.value)
                env, e, stack = self.step(env, e, stack)
            return MachineResult(diverged=True)
        except Blame as blame:
            return MachineResult(blamed=True, blame_message=str(blame))

    def eval_big(self, e: Expr, env: dict | None = None, fuel: int = 10_000) -> Value:
        """⟨E, e⟩ ⇓ v — used for comp type expressions (C-App-Comp)."""
        result = self.run(e, env, fuel)
        if result.is_value():
            return result.value
        if result.blamed:
            raise Blame(result.blame_message)
        raise Blame("type-level expression diverged")

    # ------------------------------------------------------------------
    def step(self, env: dict, e: Expr, stack: list):
        """One ⇝ step (Fig. 8)."""
        # E-Ret
        if isinstance(e, Val):
            if not stack:
                return env, e, stack
            saved_env, plug = stack[-1]
            return saved_env, plug(e), stack[:-1]

        decomposition = _decompose(e)
        if decomposition is None:
            return self._step_redex(env, e, stack)
        redex, plug = decomposition
        # E-AppUD happens under a context: the context is saved on the stack
        if isinstance(redex, Call) and self._is_user_call(redex):
            return self._app_ud(env, redex, plug, stack)
        new_env, new_redex, new_stack = self._step_redex(env, redex, stack)
        return new_env, plug(new_redex), new_stack

    def _is_user_call(self, call: Call) -> bool:
        if not (isinstance(call.receiver, Val) and isinstance(call.arg, Val)):
            return False
        recv = call.receiver.value
        if isinstance(recv, VNil):
            return False
        method = self.table.lookup(type_of_value(recv), call.method)
        return isinstance(method, UserMethod)

    def _app_ud(self, env: dict, call: Call, plug, stack: list):
        recv = call.receiver.value  # type: ignore[union-attr]
        arg = call.arg.value  # type: ignore[union-attr]
        method = self.table.lookup(type_of_value(recv), call.method)
        assert isinstance(method, UserMethod)
        new_env = {"self": recv, method.param: arg}
        return new_env, method.body, stack + [(env, plug)]

    def _step_redex(self, env: dict, e: Expr, stack: list):
        # E-Var / E-Self / E-TSelf
        if isinstance(e, Var):
            if e.name not in env:
                raise Blame(f"unbound variable {e.name}")
            return env, Val(env[e.name]), stack
        if isinstance(e, SelfE):
            if "self" not in env:
                raise Blame("self outside a method")
            return env, Val(env["self"]), stack
        if isinstance(e, TSelfE):
            if "tself" not in env:
                raise Blame("tself outside a comp type")
            return env, Val(env["tself"]), stack
        # E-New
        if isinstance(e, New):
            return env, Val(VObj(e.class_name)), stack
        # E-Seq
        if isinstance(e, Seq) and isinstance(e.first, Val):
            return env, e.second, stack
        # E-IfTrue / E-IfFalse
        if isinstance(e, If) and isinstance(e.cond, Val):
            value = e.cond.value
            falsy = isinstance(value, VNil) or (isinstance(value, VBool) and not value.value)
            return env, (e.other if falsy else e.then), stack
        # E-EqTrue / E-EqFalse
        if isinstance(e, Eq) and isinstance(e.left, Val) and isinstance(e.right, Val):
            return env, Val(VBool(e.left.value == e.right.value)), stack
        # E-AppUD at top level (no context)
        if isinstance(e, Call) and isinstance(e.receiver, Val) and isinstance(e.arg, Val):
            return self._apply_call(env, e, stack)
        # E-AppLib (checked)
        if isinstance(e, CheckedCall) and isinstance(e.receiver, Val) \
                and isinstance(e.arg, Val):
            return env, Val(self._apply_lib(e)), stack
        raise Blame(f"stuck expression: {e}")

    def _apply_call(self, env: dict, call: Call, stack: list):
        recv = call.receiver.value  # type: ignore[union-attr]
        if isinstance(recv, VNil):
            raise Blame(f"nil has no method '{call.method}'")
        method = self.table.lookup(type_of_value(recv), call.method)
        if method is None:
            raise Blame(f"{type_of_value(recv)} has no method '{call.method}'")
        if isinstance(method, UserMethod):
            new_env = {"self": recv, method.param: call.arg.value}  # type: ignore[union-attr]
            return new_env, method.body, stack + [(env, lambda v: v)]
        # an unchecked library call in the surface program: treat as checked
        # against the declared (erased) range — the C-rules normally insert ⌈A⌉
        sig = method.sig.erased() if hasattr(method.sig, "erased") else method.sig
        checked = CheckedCall(sig.rng, call.receiver, call.method, call.arg)
        return env, checked, stack

    def _apply_lib(self, e: CheckedCall) -> Value:
        recv = e.receiver.value  # type: ignore[union-attr]
        arg = e.arg.value  # type: ignore[union-attr]
        if isinstance(recv, VNil):
            raise Blame(f"nil has no method '{e.method}'")
        method = self.table.lookup(type_of_value(recv), e.method)
        if not isinstance(method, LibMethod):
            raise Blame(f"no library method {type_of_value(recv)}.{e.method}")
        result = method.impl(recv, arg)
        # the ⌈A⌉ dynamic check: blame when outside the computed type
        if not self.table.le(type_of_value(result), e.check_type):
            raise Blame(
                f"checked call ⌈{e.check_type}⌉{type_of_value(recv)}."
                f"{e.method} returned {type_of_value(result)}"
            )
        return result
