"""Static checker tests: literals, flow, casts, weak updates, both modes."""

import pytest

from repro import CompRDL, Database


def fresh(**kwargs):
    return CompRDL(**kwargs)


def check(source, label=":app", **kwargs):
    rdl = fresh(**kwargs)
    rdl.load(source)
    return rdl.check(label)


class TestBasics:
    def test_simple_method(self):
        report = check("""
class C
  type "(Integer) -> Integer", typecheck: :app
  def double(x)
    x * 2
  end
end
""")
        assert report.ok()

    def test_wrong_return_type(self):
        report = check("""
class C
  type "(Integer) -> String", typecheck: :app
  def bad(x)
    x + 1
  end
end
""")
        assert not report.ok()
        assert "expected return type String" in str(report.errors[0])

    def test_wrong_argument(self):
        report = check("""
class C
  type "(String) -> Integer", typecheck: :app
  def bad(s)
    s + 1
  end
end
""")
        assert not report.ok()

    def test_constant_folding(self):
        report = check("""
class C
  type "() -> 4", typecheck: :app
  def four
    2 + 2
  end
end
""")
        assert report.ok()

    def test_constant_folding_rejects_wrong_singleton(self):
        report = check("""
class C
  type "() -> 5", typecheck: :app
  def four
    2 + 2
  end
end
""")
        assert not report.ok()

    def test_string_folding(self):
        report = check("""
class C
  type "() -> 'ab'", typecheck: :app
  def conc
    'a' + 'b'
  end
end
""")
        assert report.ok()

    def test_if_join(self):
        report = check("""
class C
  type "(%bool) -> Integer or String", typecheck: :app
  def branchy(b)
    if b
      1
    else
      "one"
    end
  end
end
""")
        assert report.ok()

    def test_postfix_return(self):
        report = check("""
class C
  type "(Integer) -> %bool", typecheck: :app
  def check(x)
    return false if x < 0
    true
  end
end
""")
        assert report.ok()

    def test_unannotated_callee_is_error(self):
        report = check("""
class C
  def helper
    1
  end
  type "() -> Integer", typecheck: :app
  def use
    helper
  end
end
""")
        assert not report.ok()
        assert "no type information" in str(report.errors[0])

    def test_ivar_requires_annotation(self):
        report = check("""
class C
  type "() -> Integer", typecheck: :app
  def read
    @count
  end
end
""")
        assert not report.ok()
        assert "instance variable" in str(report.errors[0])

    def test_ivar_with_annotation(self):
        report = check("""
class C
  var_type :@count, "Integer"
  type "() -> Integer", typecheck: :app
  def read
    @count
  end
end
""")
        assert report.ok()

    def test_uninitialized_constant(self):
        report = check("""
class C
  type "() -> Integer", typecheck: :app
  def broken
    Missing.all
  end
end
""")
        assert not report.ok()
        assert "uninitialized constant Missing" in str(report.errors[0])


class TestFiniteHashPrecision:
    SOURCE = """
class C
  type :cfg, "() -> { host: String, port: Integer }"
  def cfg
    { host: "localhost", port: 8080 }
  end

  type "() -> %s", typecheck: :app
  def read
    cfg[:%s]
  end
end
"""

    def test_precise_string_entry(self):
        assert check(self.SOURCE % ("String", "host")).ok()

    def test_precise_integer_entry(self):
        assert check(self.SOURCE % ("Integer", "port")).ok()

    def test_wrong_entry_type_rejected(self):
        assert not check(self.SOURCE % ("Integer", "host")).ok()

    def test_missing_key_is_nil(self):
        assert check(self.SOURCE % ("nil", "missing")).ok()

    def test_hash_merge_precision(self):
        report = check("""
class C
  type "() -> Integer", typecheck: :app
  def merged
    a = { x: 1 }
    b = { y: "s" }
    c = a.merge(b)
    c[:x]
  end
end
""")
        assert report.ok()

    def test_keys_are_singleton_tuple(self):
        report = check("""
class C
  type "() -> :a", typecheck: :app
  def first_key
    { a: 1, b: 2 }.keys.first
  end
end
""")
        assert report.ok()


class TestTuplePrecision:
    def test_index(self):
        report = check("""
class C
  type "() -> String", typecheck: :app
  def pick
    [1, 'two', :three][1]
  end
end
""")
        assert report.ok()

    def test_first_last(self):
        report = check("""
class C
  type "() -> Integer", typecheck: :app
  def ends
    t = [1, 'mid', 3]
    t.first + t.last
  end
end
""")
        assert report.ok()

    def test_length_singleton(self):
        report = check("""
class C
  type "() -> 3", typecheck: :app
  def len
    [1, 2, 3].length
  end
end
""")
        assert report.ok()

    def test_concat(self):
        report = check("""
class C
  type "() -> String", typecheck: :app
  def conc
    ([1] + ['s'])[1]
  end
end
""")
        assert report.ok()

    def test_weak_update_on_write(self):
        # a[0] = 'one' widens the shared tuple type (§4)
        report = check("""
class C
  type "() -> Integer or String", typecheck: :app
  def update
    a = [1, 'foo']
    a[0] = 'one'
    a[0]
  end
end
""")
        assert report.ok()

    def test_block_param_typed_from_receiver(self):
        report = check("""
class C
  type "() -> Array<Integer>", typecheck: :app
  def lens
    ['a', 'bb'].map { |s| s.length }
  end
end
""")
        assert report.ok()


class TestModes:
    FIG2 = """
class W
  type :page, "() -> { info: Array<String>, title: String }"
  def page
    { info: ['x'], title: 't' }
  end
  type "() -> String", typecheck: :app
  def image_url
    page[:info].first
  end
end
"""

    def test_comp_mode_no_cast(self):
        assert check(self.FIG2).ok()

    def test_rdl_mode_fails(self):
        report = check(self.FIG2, use_comp_types=False)
        assert not report.ok()

    def test_rdl_mode_repair_counts_cast(self):
        rdl = fresh(use_comp_types=False, repair_with_casts=True)
        rdl.load(self.FIG2)
        report = rdl.check(":app")
        assert report.ok()
        assert report.oracle_casts == 1

    def test_explicit_cast_counted(self):
        report = check("""
class C
  type "(%any) -> String", typecheck: :app
  def coerce(x)
    RDL.type_cast(x, "String")
  end
end
""")
        assert report.ok()
        assert report.casts_used == 1
