"""Method signature types, including comp type positions.

A standard RDL signature is ``(A1, ..., An) → A``.  A CompRDL signature may
put a *type-level computation* in any argument bound or in the return
position:  ``(t<:Symbol) → «if t.is_a?(Singleton) ... end»``.  Following the
formalism (λC's ``(a<:e1/A1) → e2/A2``), each computation carries an upper
bound — the conventional type used when comp types are disabled and when
type checking the type-level code itself (rule C-App-Comp's use of ``T(CT)``).
"""

from __future__ import annotations

from typing import Sequence

from repro.rtypes.core import NominalType, RType


class CompExpr(RType):
    """A type-level computation ``«code»/Bound``.

    ``code`` is mini-Ruby source evaluated by the comp engine with ``tself``
    and the signature's argument type variables in scope; ``bound`` is the
    conventional fallback type (λC's ``A`` in ``e/A``).
    """

    __slots__ = ("code", "bound")

    def __init__(self, code: str, bound: RType | None = None):
        super().__init__()
        self.code = code.strip()
        self.bound = bound if bound is not None else NominalType("Object")

    def _key(self) -> object:
        return (self.code, self.bound)

    def _intern_args(self) -> tuple:
        return (self.code, self.bound)

    def to_s(self) -> str:
        return f"«{self.code}»"

    def is_comp(self) -> bool:
        return True


class BoundArg(RType):
    """A named, bounded argument ``t <: Bound`` in a comp signature.

    The variable name is bound to the *type* of the actual argument during
    evaluation of the signature's comp expressions.  ``bound`` may itself be
    a :class:`CompExpr` (as in the paper's Fig. 3 ``where`` signature).
    """

    __slots__ = ("var", "bound")

    def __init__(self, var: str, bound: RType):
        super().__init__()
        self.var = var
        self.bound = bound

    def _key(self) -> object:
        return (self.var, self.bound)

    def _intern_args(self) -> tuple:
        return (self.var, self.bound)

    def to_s(self) -> str:
        return f"{self.var}<:{self.bound.to_s()}"

    def is_comp(self) -> bool:
        return self.bound.is_comp()


class OptionalArg(RType):
    """An optional positional argument ``?T``."""

    __slots__ = ("inner",)

    def __init__(self, inner: RType):
        super().__init__()
        self.inner = inner

    def _key(self) -> object:
        return self.inner

    def _intern_args(self) -> tuple:
        return (self.inner,)

    def to_s(self) -> str:
        return f"?{self.inner.to_s()}"

    def is_comp(self) -> bool:
        return self.inner.is_comp()


class VarargArg(RType):
    """A rest argument ``*T`` accepting any number of ``T``s."""

    __slots__ = ("inner",)

    def __init__(self, inner: RType):
        super().__init__()
        self.inner = inner

    def _key(self) -> object:
        return self.inner

    def _intern_args(self) -> tuple:
        return (self.inner,)

    def to_s(self) -> str:
        return f"*{self.inner.to_s()}"

    def is_comp(self) -> bool:
        return self.inner.is_comp()


class MethodType(RType):
    """A method signature ``(args) [{ blocksig }] → ret``."""

    __slots__ = ("args", "block", "ret")

    def __init__(
        self,
        args: Sequence[RType],
        block: "MethodType | None",
        ret: RType,
    ):
        super().__init__()
        self.args = list(args)
        self.block = block
        self.ret = ret

    def _key(self) -> object:
        return (tuple(self.args), self.block, self.ret)

    def _intern_args(self) -> tuple:
        return (tuple(self.args), self.block, self.ret)

    def to_s(self) -> str:
        args = ", ".join(a.to_s() for a in self.args)
        block = f" {{ {self.block.to_s()} }}" if self.block else ""
        return f"({args}){block} -> {self.ret.to_s()}"

    def is_comp(self) -> bool:
        if self.block is not None and self.block.is_comp():
            return True
        return self.ret.is_comp() or any(a.is_comp() for a in self.args)

    def arity(self) -> tuple[int, int | None]:
        """Minimum and maximum accepted argument counts (None = unbounded)."""
        minimum = 0
        maximum: int | None = 0
        for arg in self.args:
            if isinstance(arg, VarargArg):
                maximum = None
            elif isinstance(arg, OptionalArg):
                if maximum is not None:
                    maximum += 1
            else:
                minimum += 1
                if maximum is not None:
                    maximum += 1
        return minimum, maximum

    def erased(self) -> "MethodType":
        """The conventional signature with every comp position replaced by
        its declared bound — λC's ``T(CT)`` rewriting (§3.2)."""
        def erase(t: RType) -> RType:
            if isinstance(t, CompExpr):
                return t.bound
            if isinstance(t, BoundArg):
                return erase(t.bound)
            if isinstance(t, OptionalArg):
                return OptionalArg(erase(t.inner))
            if isinstance(t, VarargArg):
                return VarargArg(erase(t.inner))
            return t

        return MethodType(
            [erase(a) for a in self.args],
            self.block.erased() if self.block else None,
            erase(self.ret),
        )
