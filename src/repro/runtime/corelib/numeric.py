"""Integer and Float native methods.

The paper writes comp types for Integer (108 methods) and Float (98) that
perform constant folding on singleton numeric types (§2.4); this module
provides the runtime behaviour those annotations describe.
"""

from __future__ import annotations

import math

from repro.runtime.errors import RubyError
from repro.runtime.corelib.helpers import arg_or, as_num, call_block, native
from repro.runtime.objects import RArray, RString, ruby_to_s
from repro.runtime.interp import BreakSignal


def _arith(op):
    def fn(i, recv, args, block):
        other = as_num(arg_or(args, 0))
        try:
            return op(recv, other)
        except ZeroDivisionError:
            raise RubyError("ZeroDivisionError", "divided by 0")
    return fn


def _int_div(a, b):
    if isinstance(a, int) and isinstance(b, int):
        if b == 0:
            raise ZeroDivisionError
        return a // b
    return a / b


def _modulo(a, b):
    if b == 0:
        raise ZeroDivisionError
    return a % b


def _cmp(op):
    def fn(i, recv, args, block):
        other = as_num(arg_or(args, 0))
        return op(recv, other)
    return fn


def install_numeric(interp) -> None:
    for class_name in ("Integer", "Float"):
        klass = interp.classes[class_name]
        native(klass, "+", _arith(lambda a, b: a + b))
        native(klass, "-", _arith(lambda a, b: a - b))
        native(klass, "*", _arith(lambda a, b: a * b))
        native(klass, "/", _arith(_int_div))
        native(klass, "%", _arith(_modulo))
        native(klass, "modulo", _arith(_modulo))
        native(klass, "**", _arith(lambda a, b: a ** b))
        native(klass, "pow", _arith(lambda a, b: a ** b))
        native(klass, "fdiv", _arith(lambda a, b: a / b))
        native(klass, "<", _cmp(lambda a, b: a < b))
        native(klass, ">", _cmp(lambda a, b: a > b))
        native(klass, "<=", _cmp(lambda a, b: a <= b))
        native(klass, ">=", _cmp(lambda a, b: a >= b))
        native(klass, "<=>", _spaceship)
        native(klass, "==", lambda i, r, a, b: _num_eq(r, arg_or(a, 0)))
        native(klass, "!=", lambda i, r, a, b: not _num_eq(r, arg_or(a, 0)))
        native(klass, "abs", lambda i, r, a, b: abs(r))
        native(klass, "magnitude", lambda i, r, a, b: abs(r))
        native(klass, "ceil", _ceil)
        native(klass, "floor", _floor)
        native(klass, "round", _round)
        native(klass, "truncate", lambda i, r, a, b: math.trunc(r))
        native(klass, "to_i", lambda i, r, a, b: int(r))
        native(klass, "to_int", lambda i, r, a, b: int(r))
        native(klass, "to_f", lambda i, r, a, b: float(r))
        native(klass, "to_s", _num_to_s)
        native(klass, "inspect", _num_to_s)
        native(klass, "zero?", lambda i, r, a, b: r == 0)
        native(klass, "nonzero?", lambda i, r, a, b: None if r == 0 else r)
        native(klass, "positive?", lambda i, r, a, b: r > 0)
        native(klass, "negative?", lambda i, r, a, b: r < 0)
        native(klass, "finite?", lambda i, r, a, b: math.isfinite(r))
        native(klass, "divmod", _divmod)
        native(klass, "coerce", lambda i, r, a, b: RArray([float(as_num(arg_or(a, 0))), float(r)]))
        native(klass, "between?", _between)
        native(klass, "clamp", _clamp)
        native(klass, "step", _step)
        native(klass, "hash", lambda i, r, a, b: hash(r))
        native(klass, "eql?", lambda i, r, a, b: type(r) is type(arg_or(a, 0)) and r == arg_or(a, 0))

    integer = interp.classes["Integer"]
    native(integer, "succ", lambda i, r, a, b: r + 1)
    native(integer, "next", lambda i, r, a, b: r + 1)
    native(integer, "pred", lambda i, r, a, b: r - 1)
    native(integer, "even?", lambda i, r, a, b: r % 2 == 0)
    native(integer, "odd?", lambda i, r, a, b: r % 2 == 1)
    native(integer, "integer?", lambda i, r, a, b: True)
    native(integer, "chr", lambda i, r, a, b: RString(chr(r)))
    native(integer, "ord", lambda i, r, a, b: r)
    native(integer, "digits", _digits)
    native(integer, "bit_length", lambda i, r, a, b: r.bit_length())
    native(integer, "gcd", lambda i, r, a, b: math.gcd(r, as_num(arg_or(a, 0))))
    native(integer, "lcm", lambda i, r, a, b: abs(r * as_num(arg_or(a, 0))) // math.gcd(r, as_num(arg_or(a, 0))) if arg_or(a, 0) else 0)
    native(integer, "times", _times)
    native(integer, "upto", _upto)
    native(integer, "downto", _downto)
    native(integer, "size", lambda i, r, a, b: 8)
    native(integer, "[]", lambda i, r, a, b: (r >> as_num(arg_or(a, 0))) & 1)
    native(integer, "&", lambda i, r, a, b: r & as_num(arg_or(a, 0)))
    native(integer, "|", lambda i, r, a, b: r | as_num(arg_or(a, 0)))
    native(integer, "<<", lambda i, r, a, b: r << as_num(arg_or(a, 0)))
    native(integer, ">>", lambda i, r, a, b: r >> as_num(arg_or(a, 0)))
    native(integer, "-@", lambda i, r, a, b: -r)

    flt = interp.classes["Float"]
    native(flt, "nan?", lambda i, r, a, b: math.isnan(r))
    native(flt, "infinite?", lambda i, r, a, b: (1 if r > 0 else -1) if math.isinf(r) else None)
    native(flt, "integer?", lambda i, r, a, b: False)
    native(flt, "-@", lambda i, r, a, b: -r)


def _num_eq(a, b):
    if isinstance(b, bool) or not isinstance(b, (int, float)):
        return False
    return a == b


def _spaceship(i, recv, args, block):
    other = arg_or(args, 0)
    if isinstance(other, bool) or not isinstance(other, (int, float)):
        return None
    return (recv > other) - (recv < other)


def _num_to_s(i, recv, args, block):
    base = arg_or(args, 0)
    if base is not None and isinstance(recv, int):
        digits = "0123456789abcdefghijklmnopqrstuvwxyz"
        n, out = abs(recv), ""
        if n == 0:
            out = "0"
        while n:
            out = digits[n % base] + out
            n //= base
        return RString(("-" if recv < 0 else "") + out)
    return RString(ruby_to_s(recv))


def _ceil(i, recv, args, block):
    digits = arg_or(args, 0, 0)
    if digits == 0:
        return math.ceil(recv)
    factor = 10 ** digits
    return math.ceil(recv * factor) / factor


def _floor(i, recv, args, block):
    digits = arg_or(args, 0, 0)
    if digits == 0:
        return math.floor(recv)
    factor = 10 ** digits
    return math.floor(recv * factor) / factor


def _round(i, recv, args, block):
    digits = arg_or(args, 0, 0)
    if digits == 0:
        # Ruby rounds half away from zero
        return int(math.floor(recv + 0.5)) if recv >= 0 else int(math.ceil(recv - 0.5))
    return round(recv, digits)


def _divmod(i, recv, args, block):
    other = as_num(arg_or(args, 0))
    if other == 0:
        raise RubyError("ZeroDivisionError", "divided by 0")
    quotient, remainder = divmod(recv, other)
    return RArray([quotient, remainder])


def _between(i, recv, args, block):
    low = as_num(arg_or(args, 0))
    high = as_num(arg_or(args, 1))
    return low <= recv <= high


def _clamp(i, recv, args, block):
    low = as_num(arg_or(args, 0))
    high = as_num(arg_or(args, 1))
    return max(low, min(recv, high))


def _digits(i, recv, args, block):
    base = arg_or(args, 0, 10)
    n = abs(recv)
    if n == 0:
        return RArray([0])
    out = []
    while n:
        out.append(n % base)
        n //= base
    return RArray(out)


def _times(i, recv, args, block):
    if block is None:
        return RArray(list(range(recv)))
    try:
        for n in range(recv):
            call_block(i, block, [n])
    except BreakSignal as brk:
        return brk.value
    return recv


def _upto(i, recv, args, block):
    limit = as_num(arg_or(args, 0))
    if block is None:
        return RArray(list(range(recv, limit + 1)))
    try:
        for n in range(recv, limit + 1):
            call_block(i, block, [n])
    except BreakSignal as brk:
        return brk.value
    return recv


def _downto(i, recv, args, block):
    limit = as_num(arg_or(args, 0))
    if block is None:
        return RArray(list(range(recv, limit - 1, -1)))
    try:
        for n in range(recv, limit - 1, -1):
            call_block(i, block, [n])
    except BreakSignal as brk:
        return brk.value
    return recv


def _step(i, recv, args, block):
    limit = as_num(arg_or(args, 0))
    step = as_num(arg_or(args, 1, 1))
    values = []
    current = recv
    while (step > 0 and current <= limit) or (step < 0 and current >= limit):
        values.append(current)
        current += step
    if block is None:
        return RArray(values)
    try:
        for value in values:
            call_block(i, block, [value])
    except BreakSignal as brk:
        return brk.value
    return recv
