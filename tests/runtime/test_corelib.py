"""Behavioural tests for the native core library (the Table 1 substrate)."""

import pytest

from repro.runtime import Interp, RArray, RHash, RString


@pytest.fixture
def interp():
    return Interp()


def run(interp, src):
    return interp.run(src)


def sval(result):
    assert isinstance(result, RString), f"expected string, got {result!r}"
    return result.val


class TestStringMethods:
    @pytest.mark.parametrize("src,expected", [
        ("'hello'.upcase", "HELLO"),
        ("'HELLO'.downcase", "hello"),
        ("'hello'.capitalize", "Hello"),
        ("'hEllo'.swapcase", "HeLLO"),
        ("'  x  '.strip", "x"),
        ("'  x'.lstrip", "x"),
        ("'x  '.rstrip", "x"),
        ("'abc'.reverse", "cba"),
        ("'abc' + 'def'", "abcdef"),
        ("'ab' * 3", "ababab"),
        ("'hello world'.sub('world', 'ruby')", "hello ruby"),
        ("'a-b-c'.gsub('-', '+')", "a+b+c"),
        ("'hello'.delete('l')", "heo"),
        ("'aaabbbc'.squeeze", "abc"),
        ("'abc'.insert(1, 'X')", "aXbc"),
        ("'5'.rjust(3, '0')", "005"),
        ("'5'.ljust(3, '.')", "5.."),
        ("'x'.center(5, '-')", "--x--"),
        ("'hello'.tr('el', 'ip')", "hippo"),
        ("'a,b'.partition(',').first", "a"),
        ("'prefix_x'.delete_prefix('prefix_')", "x"),
        ("'x_suffix'.delete_suffix('_suffix')", "x"),
        ("'hello'[1, 3]", "ell"),
        ("'hello'.chars.first", "h"),
        ("'hello world'.split.last", "world"),
    ])
    def test_string_returning(self, interp, src, expected):
        assert sval(run(interp, src)) == expected

    @pytest.mark.parametrize("src,expected", [
        ("'hello'.length", 5),
        ("'hello'.index('ll')", 2),
        ("'hello'.rindex('l')", 3),
        ("'aaa'.count('a')", 3),
        ("'42'.to_i", 42),
        ("'ff'.hex", 255),
        ("'hello' =~ 'l+'", 2),
        ("'abc'.ord", 97),
    ])
    def test_numeric_returning(self, interp, src, expected):
        assert run(interp, src) == expected

    @pytest.mark.parametrize("src,expected", [
        ("'hello'.include?('ell')", True),
        ("'hello'.start_with?('he')", True),
        ("'hello'.end_with?('lo')", True),
        ("''.empty?", True),
        ("'x'.empty?", False),
        ("'abc' == 'abc'", True),
        ("'abc'.match?('b')", True),
        ("'ABC'.casecmp?('abc')", True),
    ])
    def test_predicates(self, interp, src, expected):
        assert run(interp, src) is expected

    def test_to_sym(self, interp):
        from repro.rtypes.kinds import Sym

        assert run(interp, "'abc'.to_sym") == Sym("abc")

    def test_mutation_shares(self, interp):
        assert sval(run(interp, "a = 'x'\nb = a\na << 'y'\nb")) == "xy"

    def test_gsub_bang_returns_nil_when_unchanged(self, interp):
        assert run(interp, "'aaa'.gsub!('z', 'x')") is None

    def test_scan(self, interp):
        result = run(interp, "'a1b2'.scan('[0-9]')")
        assert [s.val for s in result.items] == ["1", "2"]


class TestArrayMethods:
    @pytest.mark.parametrize("src,expected", [
        ("[1,2,3].sum", 6),
        ("[1,2,3].max", 3),
        ("[1,2,3].min", 1),
        ("[3,1,2].sort.first", 1),
        ("[1,2,3].index(2)", 1),
        ("[1,2,2,3].count(2)", 2),
        ("[1,[2,[3]]].flatten.length", 3),
        ("[1,2,3,2].uniq.length", 3),
        ("[1,2,3].reduce(:+)", 6),
        ("[[1,'a'],[2,'b']].assoc(2).first", 2),
        ("[1,2,3].take(2).last", 2),
        ("[1,2,3].drop(1).first", 2),
        ("[1,2,3].rotate.first", 2),
        ("[nil,1,nil,2].compact.length", 2),
        ("([1,2] & [2,3]).first", 2),
        ("([1] | [1,2]).length", 2),
        ("([1,2,3] - [2]).length", 2),
        ("[1,2,3].each_slice(2).length", 2),
        ("[1,2,3,4].each_cons(2).length", 3),
        ("[5,3,8].sort_by { |x| -x }.first", 8),
        ("[1,2,3,4].partition { |x| x.even? }.first.length", 2),
        ("['a','bb'].max_by { |s| s.length }.length", 2),
        ("[1,2,3].zip([4,5,6]).first.last", 4),
        ("[1,2].product([3,4]).length", 4),
        ("[[1,2],[3,4]].transpose.first.last", 3),
        ("[1,2,3].values_at(0, 2).last", 3),
        ("[1,2,3].find_index { |x| x > 1 }", 1),
        ("[2,4].all? { |x| x.even? }", True),
        ("[1,3].none? { |x| x.even? }", True),
        ("[1,2].one? { |x| x.even? }", True),
        ("[1,2,3].take_while { |x| x < 3 }.length", 2),
        ("[1,2,3].drop_while { |x| x < 3 }.length", 1),
        ("[1,2,3].each_with_object([]) { |x, acc| acc << x * 2 }.last", 6),
        ("[1,2].flat_map { |x| [x, x] }.length", 4),
        ("['a','b','a'].tally[:nothing]", None),
    ])
    def test_values(self, interp, src, expected):
        assert run(interp, src) == expected

    def test_group_by(self, interp):
        result = run(interp, "[1,2,3,4].group_by { |x| x % 2 }")
        assert isinstance(result, RHash)
        assert len(result.get(0).items) == 2

    def test_mutators_share(self, interp):
        assert run(interp, "a = [1]\nb = a\nb.push(2)\na.length") == 2

    def test_delete_if(self, interp):
        result = run(interp, "a = [1,2,3,4]\na.delete_if { |x| x.even? }\na")
        assert result.items == [1, 3]

    def test_fill(self, interp):
        assert run(interp, "[1,2].fill(9)").items == [9, 9]

    def test_fetch_raises_out_of_bounds(self, interp):
        from repro.runtime.errors import RubyError

        with pytest.raises(RubyError):
            run(interp, "[1].fetch(5)")

    def test_fetch_default(self, interp):
        assert run(interp, "[1].fetch(5, 99)") == 99

    def test_dig(self, interp):
        assert run(interp, "[[1, [2, 3]]].dig(0, 1, 1)") == 3


class TestHashMethods:
    @pytest.mark.parametrize("src,expected", [
        ("{ a: 1, b: 2 }.size", 2),
        ("{ a: 1 }.key?(:a)", True),
        ("{ a: 1 }.value?(1)", True),
        ("{ a: 1, b: 2 }.values.sum", 3),
        ("{ a: 1 }.fetch(:a)", 1),
        ("{ a: 1 }.fetch(:z, 9)", 9),
        ("{ a: 1, b: 2 }.count { |k, v| v > 1 }", 1),
        ("{ a: 1, b: 2 }.any? { |k, v| v == 2 }", True),
        ("{ a: 1 }.empty?", False),
        ("{ a: { b: 2 } }.dig(:a, :b)", 2),
        ("{ a: 1, b: 2 }.select { |k, v| v > 1 }.size", 1),
        ("{ a: 1, b: 2 }.reject { |k, v| v > 1 }.size", 1),
        ("{ a: 1 }.transform_values { |v| v * 10 }[:a]", 10),
        ("{ a: 1, b: 2 }.min_by { |k, v| v }.last", 1),
        ("{ a: 1 }.invert[1]", "a"),
    ])
    def test_values(self, interp, src, expected):
        from repro.rtypes.kinds import Sym

        result = run(interp, src)
        if isinstance(result, Sym):
            result = result.name
        assert result == expected

    def test_invert_maps_value_to_key(self, interp):
        from repro.rtypes.kinds import Sym

        assert run(interp, "{ a: 1 }.invert.values.first") == Sym("a")

    def test_each_accumulates(self, interp):
        assert run(interp, "t = 0\n{ a: 1, b: 2 }.each { |k, v| t += v }\nt") == 3

    def test_merge_bang_mutates(self, interp):
        assert run(interp, "h = { a: 1 }\nh.merge!({ b: 2 })\nh.size") == 2

    def test_to_a(self, interp):
        result = run(interp, "{ a: 1 }.to_a.first")
        assert isinstance(result, RArray)

    def test_delete(self, interp):
        assert run(interp, "h = { a: 1 }\nh.delete(:a)\nh.size") == 0

    def test_except_and_slice(self, interp):
        assert run(interp, "{ a: 1, b: 2 }.except(:a).size") == 1
        assert run(interp, "{ a: 1, b: 2 }.slice(:a).size") == 1

    def test_fetch_raises_missing(self, interp):
        from repro.runtime.errors import RubyError

        with pytest.raises(RubyError):
            run(interp, "{}.fetch(:missing)")


class TestNumericMethods:
    @pytest.mark.parametrize("src,expected", [
        ("7 / 2", 3),
        ("7.0 / 2", 3.5),
        ("7 % 3", 1),
        ("2 ** 10", 1024),
        ("(-5).abs", 5),
        ("7.divmod(3).first", 2),
        ("10.gcd(4)", 2),
        ("4.lcm(6)", 12),
        ("3.14.floor", 3),
        ("3.14.ceil", 4),
        ("2.5.round", 3),
        ("5.clamp(1, 3)", 3),
        ("5.between?(1, 10)", True),
        ("4.even?", True),
        ("4.odd?", False),
        ("0.zero?", True),
        ("3.succ", 4),
        ("3.pred", 2),
        ("255.to_s(16)", "ff"),
        ("123.digits.first", 3),
        ("1.upto(4).length", 4),
        ("3.times.length", 3),
        ("10.downto(8).length", 3),
        ("0.step(10, 5).length", 3),
        ("65.chr", "A"),
    ])
    def test_values(self, interp, src, expected):
        result = run(interp, src)
        if isinstance(result, RString):
            result = result.val
        assert result == expected

    def test_zero_division(self, interp):
        from repro.runtime.errors import RubyError

        with pytest.raises(RubyError):
            run(interp, "1 / 0")

    def test_times_with_block(self, interp):
        assert run(interp, "t = 0\n3.times { |i| t += i }\nt") == 3
