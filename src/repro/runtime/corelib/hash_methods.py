"""Hash native methods.

``Hash#[]`` is the paper's flagship comp type for finite hash types (§2.2):
with a singleton key type it returns the exact entry type instead of the
promoted value union.  The 48 annotated Hash methods in Table 1 map onto
these implementations.
"""

from __future__ import annotations

from repro.runtime.errors import RubyError
from repro.runtime.corelib.helpers import (
    arg_or,
    call_block,
    eq,
    expect_block,
    native,
    sort_key,
)
from repro.runtime.objects import RArray, RHash, RString, ruby_to_s
from repro.runtime.interp import BreakSignal


def _h(recv) -> RHash:
    if not isinstance(recv, RHash):
        raise RubyError("TypeError", "Hash method on non-hash")
    return recv


def _truthy(value) -> bool:
    return value is not None and value is not False


def _wrap_iter(fn):
    def wrapped(i, recv, args, block):
        try:
            return fn(i, recv, args, block)
        except BreakSignal as brk:
            return brk.value
    return wrapped


def install_hash(interp) -> None:
    hash_class = interp.classes["Hash"]

    native(hash_class, "[]", lambda i, r, a, b: _h(r).get(arg_or(a, 0)))
    native(hash_class, "[]=", _store)
    native(hash_class, "store", _store)
    native(hash_class, "fetch", _fetch)
    native(hash_class, "dig", _dig)
    native(hash_class, "key?", _has_key)
    native(hash_class, "has_key?", _has_key)
    native(hash_class, "include?", _has_key)
    native(hash_class, "member?", _has_key)
    native(hash_class, "value?", _has_value)
    native(hash_class, "has_value?", _has_value)
    native(hash_class, "key", _key_for)
    native(hash_class, "keys", lambda i, r, a, b: RArray(_h(r).keys()))
    native(hash_class, "values", lambda i, r, a, b: RArray(_h(r).values()))
    native(hash_class, "values_at", lambda i, r, a, b: RArray([_h(r).get(k) for k in a]))
    native(hash_class, "length", lambda i, r, a, b: len(_h(r)))
    native(hash_class, "size", lambda i, r, a, b: len(_h(r)))
    native(hash_class, "count", _count)
    native(hash_class, "empty?", lambda i, r, a, b: len(_h(r)) == 0)
    native(hash_class, "delete", lambda i, r, a, b: _h(r).delete(arg_or(a, 0)))
    native(hash_class, "delete_if", _wrap_iter(_delete_if))
    native(hash_class, "clear", lambda i, r, a, b: (_h(r).entries.clear(), r)[1])
    native(hash_class, "each", _wrap_iter(_each))
    native(hash_class, "each_pair", _wrap_iter(_each))
    native(hash_class, "each_key", _wrap_iter(_each_key))
    native(hash_class, "each_value", _wrap_iter(_each_value))
    native(hash_class, "each_with_object", _wrap_iter(_each_with_object))
    native(hash_class, "map", _wrap_iter(_map))
    native(hash_class, "collect", _wrap_iter(_map))
    native(hash_class, "flat_map", _wrap_iter(_flat_map))
    native(hash_class, "select", _wrap_iter(_select))
    native(hash_class, "filter", _wrap_iter(_select))
    native(hash_class, "filter_map", _wrap_iter(_filter_map))
    native(hash_class, "reject", _wrap_iter(_reject))
    native(hash_class, "find", _wrap_iter(_find))
    native(hash_class, "detect", _wrap_iter(_find))
    native(hash_class, "merge", _merge)
    native(hash_class, "merge!", _merge_bang)
    native(hash_class, "update", _merge_bang)
    native(hash_class, "to_a", lambda i, r, a, b: RArray([RArray([k, v]) for k, v in _h(r).pairs()]))
    native(hash_class, "to_h", lambda i, r, a, b: r)
    native(hash_class, "to_s", lambda i, r, a, b: RString(ruby_to_s(r)))
    native(hash_class, "inspect", lambda i, r, a, b: RString(ruby_to_s(r)))
    native(hash_class, "invert", _invert)
    native(hash_class, "any?", _wrap_iter(_any))
    native(hash_class, "all?", _wrap_iter(_all))
    native(hash_class, "none?", _wrap_iter(_none))
    native(hash_class, "sum", _wrap_iter(_sum))
    native(hash_class, "min_by", _wrap_iter(_min_by))
    native(hash_class, "max_by", _wrap_iter(_max_by))
    native(hash_class, "sort_by", _wrap_iter(_sort_by))
    native(hash_class, "group_by", _wrap_iter(_group_by))
    native(hash_class, "partition", _wrap_iter(_partition))
    native(hash_class, "transform_values", _wrap_iter(_transform_values))
    native(hash_class, "transform_keys", _wrap_iter(_transform_keys))
    native(hash_class, "compact", _compact)
    native(hash_class, "slice", _slice)
    native(hash_class, "except", _except)
    native(hash_class, "reduce", _wrap_iter(_reduce))
    native(hash_class, "inject", _wrap_iter(_reduce))
    native(hash_class, "==", lambda i, r, a, b: eq(r, arg_or(a, 0)))
    native(hash_class, "eql?", lambda i, r, a, b: eq(r, arg_or(a, 0)))
    native(hash_class, "dup", lambda i, r, a, b: RHash.from_pairs(_h(r).pairs()))
    native(hash_class, "clone", lambda i, r, a, b: RHash.from_pairs(_h(r).pairs()))
    native(hash_class, "freeze", lambda i, r, a, b: r)
    native(hash_class, "frozen?", lambda i, r, a, b: False)
    native(hash_class, "replace", lambda i, r, a, b: (_replace(r, arg_or(a, 0)), r)[1])
    native(hash_class, "sort", lambda i, r, a, b: RArray(sorted((RArray([k, v]) for k, v in _h(r).pairs()), key=sort_key(i))))
    native(hash_class, "hash", lambda i, r, a, b: len(_h(r)))


def _store(i, recv, args, block):
    _h(recv).set(args[0], args[1])
    return args[1]


def _fetch(i, recv, args, block):
    h = _h(recv)
    key = arg_or(args, 0)
    if h.has_key(key):
        return h.get(key)
    if len(args) >= 2:
        return args[1]
    if block is not None:
        return call_block(i, block, [key])
    raise RubyError("KeyError", f"key not found: {ruby_to_s(key)}")


def _dig(i, recv, args, block):
    current: object = recv
    for key in args:
        if current is None:
            return None
        current = i.call_method(current, "[]", [key], None, 0)
    return current


def _has_key(i, recv, args, block):
    return _h(recv).has_key(arg_or(args, 0))


def _has_value(i, recv, args, block):
    return any(eq(v, arg_or(args, 0)) for v in _h(recv).values())


def _key_for(i, recv, args, block):
    for k, v in _h(recv).pairs():
        if eq(v, arg_or(args, 0)):
            return k
    return None


def _count(i, recv, args, block):
    h = _h(recv)
    if block is None:
        return len(h)
    return sum(1 for k, v in h.pairs() if _truthy(call_block(i, block, [k, v])))


def _delete_if(i, recv, args, block):
    expect_block(i, block, "delete_if")
    h = _h(recv)
    keep = [(k, v) for k, v in h.pairs() if not _truthy(call_block(i, block, [k, v]))]
    h.entries.clear()
    for k, v in keep:
        h.set(k, v)
    return recv


def _each(i, recv, args, block):
    if block is None:
        return recv
    for k, v in _h(recv).pairs():
        call_block(i, block, [k, v])
    return recv


def _each_key(i, recv, args, block):
    expect_block(i, block, "each_key")
    for k in _h(recv).keys():
        call_block(i, block, [k])
    return recv


def _each_value(i, recv, args, block):
    expect_block(i, block, "each_value")
    for v in _h(recv).values():
        call_block(i, block, [v])
    return recv


def _each_with_object(i, recv, args, block):
    expect_block(i, block, "each_with_object")
    memo = arg_or(args, 0)
    for k, v in _h(recv).pairs():
        call_block(i, block, [RArray([k, v]), memo])
    return memo


def _map(i, recv, args, block):
    expect_block(i, block, "map")
    return RArray([call_block(i, block, [k, v]) for k, v in _h(recv).pairs()])


def _flat_map(i, recv, args, block):
    expect_block(i, block, "flat_map")
    out: list = []
    for k, v in _h(recv).pairs():
        result = call_block(i, block, [k, v])
        if isinstance(result, RArray):
            out.extend(result.items)
        else:
            out.append(result)
    return RArray(out)


def _select(i, recv, args, block):
    expect_block(i, block, "select")
    return RHash.from_pairs(
        (k, v) for k, v in _h(recv).pairs() if _truthy(call_block(i, block, [k, v]))
    )


def _filter_map(i, recv, args, block):
    expect_block(i, block, "filter_map")
    out = []
    for k, v in _h(recv).pairs():
        value = call_block(i, block, [k, v])
        if _truthy(value):
            out.append(value)
    return RArray(out)


def _reject(i, recv, args, block):
    expect_block(i, block, "reject")
    return RHash.from_pairs(
        (k, v) for k, v in _h(recv).pairs() if not _truthy(call_block(i, block, [k, v]))
    )


def _find(i, recv, args, block):
    expect_block(i, block, "find")
    for k, v in _h(recv).pairs():
        if _truthy(call_block(i, block, [k, v])):
            return RArray([k, v])
    return None


def _merge(i, recv, args, block):
    result = RHash.from_pairs(_h(recv).pairs())
    for other in args:
        for k, v in _h(other).pairs():
            if block is not None and result.has_key(k):
                v = call_block(i, block, [k, result.get(k), v])
            result.set(k, v)
    return result


def _merge_bang(i, recv, args, block):
    merged = _merge(i, recv, args, block)
    _replace(recv, merged)
    return recv


def _replace(recv: RHash, other: RHash) -> None:
    recv.entries.clear()
    for k, v in _h(other).pairs():
        recv.set(k, v)


def _invert(i, recv, args, block):
    return RHash.from_pairs((v, k) for k, v in _h(recv).pairs())


def _any(i, recv, args, block):
    h = _h(recv)
    if block is None:
        return len(h) > 0
    return any(_truthy(call_block(i, block, [k, v])) for k, v in h.pairs())


def _all(i, recv, args, block):
    h = _h(recv)
    if block is None:
        return True
    return all(_truthy(call_block(i, block, [k, v])) for k, v in h.pairs())


def _none(i, recv, args, block):
    return not _any(i, recv, args, block)


def _sum(i, recv, args, block):
    total = arg_or(args, 0, 0)
    for k, v in _h(recv).pairs():
        value = call_block(i, block, [k, v]) if block is not None else RArray([k, v])
        total = i.call_method(total, "+", [value], None, 0)
    return total


def _min_by(i, recv, args, block):
    expect_block(i, block, "min_by")
    pairs = _h(recv).pairs()
    if not pairs:
        return None
    k, v = min(pairs, key=lambda kv: sort_key(i)(call_block(i, block, [kv[0], kv[1]])))
    return RArray([k, v])


def _max_by(i, recv, args, block):
    expect_block(i, block, "max_by")
    pairs = _h(recv).pairs()
    if not pairs:
        return None
    k, v = max(pairs, key=lambda kv: sort_key(i)(call_block(i, block, [kv[0], kv[1]])))
    return RArray([k, v])


def _sort_by(i, recv, args, block):
    expect_block(i, block, "sort_by")
    pairs = list(_h(recv).pairs())
    pairs.sort(key=lambda kv: sort_key(i)(call_block(i, block, [kv[0], kv[1]])))
    return RArray([RArray([k, v]) for k, v in pairs])


def _group_by(i, recv, args, block):
    expect_block(i, block, "group_by")
    result = RHash()
    for k, v in _h(recv).pairs():
        key = call_block(i, block, [k, v])
        bucket = result.get(key)
        if bucket is None:
            bucket = RArray([])
            result.set(key, bucket)
        bucket.items.append(RArray([k, v]))
    return result


def _partition(i, recv, args, block):
    expect_block(i, block, "partition")
    yes, no = [], []
    for k, v in _h(recv).pairs():
        (yes if _truthy(call_block(i, block, [k, v])) else no).append(RArray([k, v]))
    return RArray([RArray(yes), RArray(no)])


def _transform_values(i, recv, args, block):
    expect_block(i, block, "transform_values")
    return RHash.from_pairs((k, call_block(i, block, [v])) for k, v in _h(recv).pairs())


def _transform_keys(i, recv, args, block):
    expect_block(i, block, "transform_keys")
    return RHash.from_pairs((call_block(i, block, [k]), v) for k, v in _h(recv).pairs())


def _compact(i, recv, args, block):
    return RHash.from_pairs((k, v) for k, v in _h(recv).pairs() if v is not None)


def _slice(i, recv, args, block):
    h = _h(recv)
    return RHash.from_pairs((k, h.get(k)) for k in args if h.has_key(k))


def _except(i, recv, args, block):
    from repro.runtime.objects import hash_key

    excluded = {hash_key(k) for k in args}
    return RHash.from_pairs(
        (k, v) for k, v in _h(recv).pairs() if hash_key(k) not in excluded
    )


def _reduce(i, recv, args, block):
    expect_block(i, block, "reduce")
    pairs = [RArray([k, v]) for k, v in _h(recv).pairs()]
    if args:
        memo = args[0]
    else:
        if not pairs:
            return None
        memo = pairs.pop(0)
    for pair in pairs:
        memo = call_block(i, block, [memo, pair])
    return memo
