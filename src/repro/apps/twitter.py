"""Twitter gem benchmark: stream API bindings (3 methods, §5.2).

The paper annotated the stream-API methods that use comp-typed libraries.
Tweets arrive as JSON; each method needs a cast on the ``JSON.parse``
result (Table 2: Casts = 3).
"""

from repro.apps.base import SubjectApp

_SOURCE = '''
TWEET_JSON = '{"id": 1812, "text": "CompRDL types Ruby DB queries #pldi",' +
  ' "user": {"screen_name": "plresearcher", "followers_count": 1024},' +
  ' "entities": {"hashtags": ["pldi", "ruby"], "urls": []},' +
  ' "favorite_count": 99, "retweeted": false}'

class TwitterStream
  type "(String) -> String", typecheck: :twitter
  def tweet_text(raw)
    tweet = RDL.type_cast(JSON.parse(raw), "{ id: Integer, text: String, user: { screen_name: String, followers_count: Integer }, entities: { hashtags: Array<String>, urls: Array<String> }, favorite_count: Integer, retweeted: %bool }")
    tweet[:text]
  end

  type "(String) -> String", typecheck: :twitter
  def author_handle(raw)
    tweet = RDL.type_cast(JSON.parse(raw), "{ id: Integer, text: String, user: { screen_name: String, followers_count: Integer }, entities: { hashtags: Array<String>, urls: Array<String> }, favorite_count: Integer, retweeted: %bool }")
    user = tweet[:user]
    "@" + user[:screen_name]
  end

  type "(String) -> Array<String>", typecheck: :twitter
  def hashtags(raw)
    tweet = RDL.type_cast(JSON.parse(raw), "{ id: Integer, text: String, user: { screen_name: String, followers_count: Integer }, entities: { hashtags: Array<String>, urls: Array<String> }, favorite_count: Integer, retweeted: %bool }")
    tweet[:entities][:hashtags].map { |tag| "#" + tag }
  end
end
'''

_TESTS = '''
stream = TwitterStream.new
out = []
out << stream.tweet_text(TWEET_JSON)
out << stream.author_handle(TWEET_JSON)
out << stream.hashtags(TWEET_JSON).join(" ")
out.length
'''

TWITTER = SubjectApp(
    name="Twitter",
    label="twitter",
    source=_SOURCE,
    test_suite=_TESTS,
    expected_errors=0,
    paper={"methods": 3, "loc": 29, "casts": 3, "casts_rdl": 8, "errors": 0},
)
