"""Dynamic checks inserted at comp-typed call sites (§2.4, §3.2, §4).

When the checker types a call via a comp signature it attaches a
:class:`CheckSpec` to the call node.  At run time (with checks enabled) the
interpreter consults the spec:

* **before the call** — every comp expression in the signature is
  *re-evaluated* on the same input types recorded at type-checking time; a
  different result means mutable state the comp type depends on changed
  (e.g. the DB schema), and an exception is raised (§4 "Heap Mutation");
  computed argument types are also checked against the actual argument
  values (contract-style);
* **after the call** — the returned value is checked against the computed
  return type: λC's checked call ⌈A⌉e.m(e), reducing to blame on failure.

Specs are *specialized at construction*: the argument and return types are
lowered once into compiled membership predicates
(:mod:`repro.runtime.member_compile`), so the per-call loop does no type
dispatch.  Under ``REPRO_MEMBERSHIP=structural`` no plan is bound and every
check routes through the reference ``value_has_type`` walker instead;
failure messages are rendered from the original types in both modes, so
Blame is byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtypes import CompExpr, RType
from repro.runtime.errors import Blame
from repro.runtime.member_compile import predicate_for, structural_mode
from repro.runtime.membership import value_has_type


@dataclass
class CheckSpec:
    """Runtime contract for one comp-typed call site."""

    method_desc: str
    ret_type: RType
    arg_types: list[RType] = field(default_factory=list)
    # (comp expression, bindings, expected result) triples for consistency
    comp_results: list[tuple[CompExpr, dict, RType]] = field(default_factory=list)
    engine: object = None
    line: int = 0
    col: int = 0
    check_args: bool = True
    # db.version at the last successful consistency re-validation; the
    # inputs (bindings) are fixed per call site, so the comp results can
    # only change when the mutable state they consult changes (§4)
    _validated_version: int | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self._bind_plan()

    def _bind_plan(self) -> None:
        """Precompile the membership plan for this spec's signature.

        ``_arg_plan`` pairs each compiled predicate with the original type
        (kept for Blame rendering); ``None`` plans mean structural mode.
        """
        if structural_mode():
            self._arg_plan = None
            self._ret_pred = None
            return
        self._arg_plan = [(predicate_for(t), t) for t in self.arg_types]
        self._ret_pred = predicate_for(self.ret_type)

    def __getstate__(self):
        # plans hold process-local closures (inline caches, interp
        # weakrefs): scrub on pickle, rebind on unpickle — specs crossing
        # the fleet's process boundary recompile against the worker's
        # intern table
        state = dict(self.__dict__)
        state["_arg_plan"] = None
        state["_ret_pred"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._bind_plan()

    def before_call(self, interp, receiver, args, line) -> None:
        version = getattr(interp.db, "version", 0) if interp.db else 0
        if self._validated_version == version:
            self._check_arg_values(interp, args, line)
            return
        for comp, bindings, expected in self.comp_results:
            try:
                recomputed = self.engine.evaluate_for_check(
                    comp, bindings, line, self.method_desc)
            except Exception as exc:
                raise Blame(
                    f"comp type for {self.method_desc} failed to re-evaluate "
                    f"at call time: {exc}", line, col=self.col,
                )
            if recomputed != expected:
                raise Blame(
                    f"comp type for {self.method_desc} changed between type "
                    f"checking ({expected.to_s()}) and call time "
                    f"({recomputed.to_s()}) — mutable state the type depends "
                    f"on was modified", line, col=self.col,
                )
        self._validated_version = version
        self._check_arg_values(interp, args, line)

    def _check_arg_values(self, interp, args, line) -> None:
        if not self.check_args:
            return
        plan = self._arg_plan
        if plan is not None:
            for value, (pred, expected) in zip(args, plan):
                if not pred(interp, value):
                    raise Blame(
                        f"argument to {self.method_desc} is not a "
                        f"{expected.to_s()}", line, col=self.col,
                    )
            return
        for value, expected in zip(args, self.arg_types):
            if not value_has_type(interp, value, expected):
                raise Blame(
                    f"argument to {self.method_desc} is not a "
                    f"{expected.to_s()}", line, col=self.col,
                )

    def after_call(self, interp, receiver, args, result, line) -> None:
        pred = self._ret_pred
        ok = (pred(interp, result) if pred is not None
              else value_has_type(interp, result, self.ret_type))
        if not ok:
            raise Blame(
                f"{self.method_desc} returned a value outside its computed "
                f"type {self.ret_type.to_s()}", line, col=self.col,
            )
