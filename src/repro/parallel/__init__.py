"""Parallel sharded checking: planner → spawn workers → verdict-parity merge.

The fleet partitions the methods of one or more subject-app labels into
cost-balanced shards (:mod:`repro.parallel.planner`), checks each shard in a
spawn-mode worker process that rebuilds its apps from the label
(:mod:`repro.parallel.worker`), and deterministically folds the picklable
verdicts back into a single report that is verdict-for-verdict identical to
a serial run, back-feeding dependency footprints into the incremental
engine (:mod:`repro.parallel.merge`).

Use :class:`ParallelCheckEngine` for a persistent fleet,
:func:`check_fleet` for one-shot checks, or
``CompRDL.check_all(labels, workers=N)`` to parallel-check one universe.
"""

from repro.parallel.engine import (
    ParallelCheckEngine,
    ParallelRun,
    check_fleet,
    check_universe_parallel,
    specs_for_labels,
)
from repro.parallel.merge import (
    ShardGapError,
    feed_incremental,
    merge_report,
)
from repro.parallel.planner import Shard, method_cost, plan_shards
from repro.parallel.protocol import (
    MethodSpec,
    MethodVerdict,
    ShardResult,
    ShardTask,
)

__all__ = [
    "MethodSpec",
    "MethodVerdict",
    "ParallelCheckEngine",
    "ParallelRun",
    "Shard",
    "ShardGapError",
    "ShardResult",
    "ShardTask",
    "check_fleet",
    "check_universe_parallel",
    "feed_incremental",
    "merge_report",
    "method_cost",
    "plan_shards",
    "specs_for_labels",
]
