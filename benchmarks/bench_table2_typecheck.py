"""Benchmark: Table 2, type-checking-time columns.

One benchmark per subject program, timing `check(label)` over a freshly
loaded instance (the paper reports median ± SIQR of 11 runs; pytest-benchmark
collects its own statistics).  Assertions pin the qualitative results:
errors found and comp-mode cast counts.
"""

import os

import pytest

from repro.apps import all_apps

APPS = {app.name: app for app in all_apps()}


@pytest.mark.parametrize("name", list(APPS))
def test_bench_typecheck(benchmark, name):
    app = APPS[name]

    def check_once():
        rdl = app.build()
        return rdl.check(app.label)

    report = benchmark(check_once)
    assert len(report.errors) == app.expected_errors, (
        f"{name}: expected {app.expected_errors} errors, got "
        f"{[str(e) for e in report.errors]}")


def test_total_checking_is_fast():
    """The paper checks all 132 methods in ~15s; ours must stay in the same
    'seconds, not minutes' regime on this substrate."""
    import time

    start = time.perf_counter()
    total_methods = 0
    for app in APPS.values():
        rdl = app.build()
        report = rdl.check(app.label)
        total_methods += len(report.checked_methods)
    elapsed = time.perf_counter() - start
    assert total_methods >= 100
    if os.environ.get("BENCH_QUICK"):
        # CI smoke mode records but never gates on machine-dependent timing
        print(f"checking took {elapsed:.1f}s (not gated in quick mode)")
        return
    assert elapsed < 30, f"checking took {elapsed:.1f}s"
