"""Default termination/purity effects for core-library methods (§4, Fig. 6).

Annotations can override these with ``terminates:`` / ``pure:`` keywords;
what is listed here reflects the semantics of the native implementations:
iterators are ``:blockdep`` (they terminate iff their block terminates and
is pure), mutators are impure, and everything else is pure and terminating.
Unknown user-defined methods default to the conservative ``(-, -)``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class _Effect:
    terminates: str
    pure: str


# Iterator methods: terminate if the block terminates and does not mutate
# the receiver (":blockdep").
_BLOCKDEP = {
    "each", "each_with_index", "each_index", "each_with_object", "each_pair",
    "each_key", "each_value", "each_char", "each_line", "each_slice",
    "each_cons", "reverse_each", "map", "collect", "flat_map",
    "collect_concat", "select", "filter", "filter_map", "reject", "find",
    "detect", "all?", "any?", "none?", "one?", "count", "sum", "min_by",
    "max_by", "sort_by", "sort", "group_by", "partition", "take_while",
    "drop_while", "reduce", "inject", "times", "upto", "downto", "step",
    "uniq", "tally", "zip", "find_index", "index", "transform_values",
    "transform_keys", "scan", "gsub", "sub", "fill", "cycle", "combination",
}

# Methods that mutate their receiver (impure; still terminate).
_IMPURE = {
    "push", "append", "<<", "pop", "shift", "unshift", "prepend", "insert",
    "delete", "delete_at", "delete_if", "keep_if", "clear", "replace",
    "concat", "compact!", "flatten!", "uniq!", "reverse!", "sort!",
    "sort_by!", "map!", "collect!", "select!", "filter!", "reject!",
    "store", "[]=", "merge!", "update", "upcase!", "downcase!",
    "capitalize!", "swapcase!", "strip!", "lstrip!", "rstrip!", "chomp!",
    "chop!", "sub!", "gsub!", "slice!", "squeeze!", "succ!", "next!",
    "tr!", "freeze", "puts", "print", "p", "instance_variable_set",
    "create", "create!", "save", "save!", "update!", "destroy", "destroy!",
    "delete_all", "update_all", "insert_row",
}

# Methods that may diverge regardless of blocks (loop-like).
_DIVERGENT = {"loop"}


def default_effect(class_name: str, method_name: str):
    """The (terminates, pure) effect assumed for an unannotated method."""
    from repro.typecheck.registry import EffectInfo

    if method_name in _DIVERGENT:
        return EffectInfo("-", "-")
    if method_name in _BLOCKDEP:
        return EffectInfo("blockdep", "+")
    if method_name in _IMPURE:
        return EffectInfo("+", "-")
    if class_name in _CORE_CLASSES:
        return EffectInfo("+", "+")
    return EffectInfo("-", "-")


_CORE_CLASSES = {
    "Object", "Kernel", "BasicObject", "Comparable", "Enumerable",
    "Integer", "Float", "Numeric", "String", "Symbol", "Array", "Hash",
    "Range", "Proc", "NilClass", "TrueClass", "FalseClass", "Boolean",
    "Class", "Module", "Type", "RDL", "Table",
    "Singleton", "Nominal", "Generic", "FiniteHash", "Tuple", "Union",
    "ConstString",
}
