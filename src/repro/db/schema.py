"""Database schemas and storage.

Schemas are the ground truth the comp types consult: ``RDL.db_schema``
returns a hash from table name to ``Table<{col: Type, ...}>`` — exactly the
shape ``schema_type`` destructures in Fig. 1b.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.incremental.versioning import WILDCARD, SchemaEvent, SchemaJournal
from repro.rtypes import FiniteHashType, GenericType, NominalType, RType
from repro.rtypes.kinds import Sym
from repro.runtime.objects import RHash, RString

_COLUMN_TYPES: dict[str, RType] = {
    "integer": NominalType("Integer"),
    "string": NominalType("String"),
    "text": NominalType("String"),
    "boolean": NominalType("Boolean"),
    "float": NominalType("Float"),
    "datetime": NominalType("String"),
}


@dataclass
class Column:
    """One column: a name and a SQL-ish type kind."""

    name: str
    kind: str

    def rtype(self) -> RType:
        if self.kind not in _COLUMN_TYPES:
            raise ValueError(f"unknown column type {self.kind!r}")
        return _COLUMN_TYPES[self.kind]


@dataclass
class TableSchema:
    """A table's name and ordered columns."""

    name: str
    columns: dict[str, Column] = field(default_factory=dict)
    _fh_cache: FiniteHashType | None = field(default=None, repr=False, compare=False)

    def column(self, name: str) -> Column | None:
        return self.columns.get(name)

    def finite_hash(self) -> FiniteHashType:
        """The schema as a finite hash type ``{col: Type, ...}`` (memoized;
        column mutations invalidate the cache)."""
        if self._fh_cache is None:
            self._fh_cache = FiniteHashType(
                {Sym(c.name): c.rtype() for c in self.columns.values()}
            )
        return self._fh_cache

    def table_type(self) -> GenericType:
        """The schema as ``Table<{...}>``."""
        return GenericType("Table", [self.finite_hash()])


class Database:
    """Schemas plus row storage plus declared associations."""

    def __init__(self) -> None:
        self.tables: dict[str, TableSchema] = {}
        self.rows: dict[str, list[dict]] = {}
        # model associations: (owner_table, assoc_table) pairs declared via
        # has_many / belongs_to — consulted by the `joins` comp type
        self.associations: set[tuple[str, str]] = set()
        self._next_ids: dict[str, int] = {}
        # bumped on every schema mutation; comp-type caches key on it so
        # consistency checks stay sound (§4) but cheap
        self.version = 0
        # the incremental engine's view of this database: a journal of what
        # each generation changed, plus read/change listeners
        self.journal = SchemaJournal()
        self.read_listeners: list = []
        self.change_listeners: list = []

    # -- incremental hooks -------------------------------------------------
    def add_read_listener(self, listener) -> None:
        """``listener(table, column=None)`` fires on every schema read."""
        if listener not in self.read_listeners:
            self.read_listeners.append(listener)

    def add_change_listener(self, listener) -> None:
        """``listener(event)`` fires after every schema mutation."""
        if listener not in self.change_listeners:
            self.change_listeners.append(listener)

    def note_read(self, table: str, column: str | None = None) -> None:
        for listener in self.read_listeners:
            listener(table, column)

    def _mutated(self, kind: str, table: str, column: str | None = None,
                 detail: str | None = None) -> None:
        self.version += 1
        event = SchemaEvent(kind, self.version, table, column, detail)
        self.journal.record(event)
        for listener in self.change_listeners:
            listener(event)

    # -- schema -----------------------------------------------------------
    def create_table(self, table_name: str, **columns: str) -> TableSchema:
        """Create a table: ``create_table("users", username="string", ...)``.

        An integer ``id`` column is added automatically when absent.
        """
        schema = TableSchema(
            table_name, {c: Column(c, kind) for c, kind in columns.items()}
        )
        if "id" not in schema.columns:
            schema.columns = {"id": Column("id", "integer"), **schema.columns}
        self.tables[table_name] = schema
        self.rows[table_name] = []
        self._next_ids[table_name] = 1
        self._mutated("create_table", table_name)
        return schema

    def drop_table(self, table: str) -> None:
        """Remove a whole table (migration)."""
        self.tables.pop(table, None)
        self.rows.pop(table, None)
        self._next_ids.pop(table, None)
        self.associations = {
            pair for pair in self.associations if table not in pair
        }
        self._mutated("drop_table", table)

    def rename_table(self, table: str, new_name: str) -> None:
        """Rename a whole table (migration), preserving rows, id counters,
        and associations.  Dependents of the old name are invalidated: the
        journal event carries the new name as its detail, so both names
        count as changed."""
        if table not in self.tables:
            raise KeyError(f"no such table {table!r}")
        if new_name in self.tables:
            raise KeyError(
                f"cannot rename {table!r} to {new_name!r}: table exists")
        schema = self.tables.pop(table)
        schema.name = new_name
        self.tables[new_name] = schema
        self.rows[new_name] = self.rows.pop(table, [])
        self._next_ids[new_name] = self._next_ids.pop(table, 1)
        self.associations = {
            tuple(new_name if name == table else name for name in pair)
            for pair in self.associations
        }
        self._mutated("rename_table", table, detail=new_name)

    def drop_column(self, table: str, column: str) -> None:
        """Remove a column (used to exercise comp-type consistency checks)."""
        schema = self.tables[table]
        schema.columns.pop(column, None)
        schema._fh_cache = None
        self._mutated("drop_column", table, column)

    def add_column(self, table: str, column: str, kind: str) -> None:
        self.tables[table].columns[column] = Column(column, kind)
        self.tables[table]._fh_cache = None
        self._mutated("add_column", table, column)

    def rename_column(self, table: str, column: str, new_name: str) -> None:
        """Rename a column in place, preserving order and row data."""
        schema = self.tables[table]
        if column not in schema.columns:
            raise KeyError(f"no column {column!r} in table {table!r}")
        schema.columns = {
            (new_name if name == column else name):
                (Column(new_name, col.kind) if name == column else col)
            for name, col in schema.columns.items()
        }
        schema._fh_cache = None
        for row in self.rows.get(table, []):
            if column in row:
                row[new_name] = row.pop(column)
        self._mutated("rename_column", table, column, detail=new_name)

    def schema_of(self, table: str) -> TableSchema | None:
        self.note_read(table)
        return self.tables.get(table)

    def all_schemas(self) -> dict[str, TableSchema]:
        """Every table schema; registers a wildcard read (whole-schema
        consumers like ``RDL.db_schema`` depend on any change)."""
        self.note_read(WILDCARD)
        return dict(self.tables)

    def schema_hash(self) -> RHash:
        """``RDL.db_schema``: table name symbol → ``Table<{...}>`` type."""
        result = RHash()
        for name, schema in self.all_schemas().items():
            result.set(Sym(name), schema.table_type())
        return result

    def declare_association(self, owner_table: str, assoc_table: str) -> None:
        self.associations.add((owner_table, assoc_table))
        self._mutated("association", owner_table, detail=assoc_table)

    def associated(self, owner_table: str, assoc_table: str) -> bool:
        self.note_read(owner_table)
        self.note_read(assoc_table)
        return (owner_table, assoc_table) in self.associations

    # -- rows ----------------------------------------------------------------
    def insert(self, table: str, values: dict) -> dict:
        """Insert a row (auto-assigning ``id``) and return it."""
        if table not in self.tables:
            raise KeyError(f"no such table {table!r}")
        row = dict(values)
        if "id" not in row:
            row["id"] = self._next_ids[table]
            self._next_ids[table] += 1
        else:
            self._next_ids[table] = max(self._next_ids[table], int(row["id"]) + 1)
        self.rows[table].append(row)
        return row

    def all_rows(self, table: str) -> list[dict]:
        return list(self.rows.get(table, []))

    def delete_rows(self, table: str, predicate) -> int:
        before = len(self.rows[table])
        self.rows[table] = [r for r in self.rows[table] if not predicate(r)]
        return before - len(self.rows[table])

    def clear(self, table: str | None = None) -> None:
        if table is None:
            for name in self.rows:
                self.rows[name] = []
        else:
            self.rows[table] = []
