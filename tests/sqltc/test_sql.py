"""SQL subset: parser, type checker (Fig. 3), and evaluator tests."""

import pytest

from repro import Database
from repro.sqltc import (
    SqlParseError,
    SqlTypeError,
    check_fragment,
    eval_where_fragment,
    parse_query,
    parse_where_fragment,
    wrap_fragment,
)
from repro.sqltc.checker import SqlChecker


@pytest.fixture
def db():
    d = Database()
    d.create_table("posts", topic_id="integer", raw="string")
    d.create_table("topics", title="string", views="integer")
    d.create_table("topic_allowed_groups", group_id="integer",
                   topic_id="integer")
    d.insert("topics", {"title": "welcome", "views": 10})
    d.insert("posts", {"topic_id": 1, "raw": "hi"})
    d.insert("topic_allowed_groups", {"group_id": 7, "topic_id": 1})
    return d


class TestParser:
    def test_full_query(self):
        q = parse_query("SELECT * FROM posts INNER JOIN topics ON a.id = b.a_id "
                        "WHERE topics.title = 'x'")
        assert q.table == "posts"
        assert q.joins[0].table == "topics"

    def test_fragment(self):
        cond = parse_where_fragment("title = ? AND views > 3")
        assert cond is not None

    def test_in_subquery(self):
        cond = parse_where_fragment(
            "topic_id IN (SELECT topic_id FROM topic_allowed_groups WHERE group_id = ?)")
        assert cond.subquery.table == "topic_allowed_groups"

    def test_is_null(self):
        cond = parse_where_fragment("title IS NOT NULL")
        assert cond.negated

    def test_bad_sql_rejected(self):
        with pytest.raises(SqlParseError):
            parse_where_fragment("SELECT FROM WHERE")

    def test_wrap_fragment(self):
        sql = wrap_fragment("title = 'x'", ["posts", "topics"])
        assert sql.startswith("SELECT * FROM posts INNER JOIN topics")
        parse_query(sql)  # the artificial query must parse (§2.3)

    def test_wrap_fragment_on_clause_uses_real_table_names(self, db):
        sql = wrap_fragment("title = 'x'", ["topics", "posts"])
        assert "INNER JOIN posts ON topics.id = posts.topic_id" in sql
        query = parse_query(sql)
        join = query.joins[0]
        # every column the synthetic ON clause mentions resolves in-schema
        checker = SqlChecker(db, ["topics", "posts"], [])
        assert checker.column_kind(join.on_left) == "integer"
        assert checker.column_kind(join.on_right) == "integer"

    def test_wrap_fragment_multiple_joins(self):
        sql = wrap_fragment("group_id = 3",
                            ["topics", "posts", "topic_allowed_groups"])
        assert "INNER JOIN posts ON topics.id = posts.topic_id" in sql
        assert ("INNER JOIN topic_allowed_groups "
                "ON topics.id = topic_allowed_groups.topic_id") in sql
        parse_query(sql)

    def test_wrap_fragment_belongs_to_direction(self, db):
        # the FK lives on posts (posts.topic_id), so joining topics from a
        # posts base must flip the ON clause to the belongs-to direction
        sql = wrap_fragment("title = 'x'", ["posts", "topics"], db=db)
        assert "INNER JOIN topics ON topics.id = posts.topic_id" in sql
        query = parse_query(sql)
        join = query.joins[0]
        checker = SqlChecker(db, ["posts", "topics"], [])
        assert checker.column_kind(join.on_left) == "integer"
        assert checker.column_kind(join.on_right) == "integer"


class TestChecker:
    def test_fig3_bug_detected(self, db):
        with pytest.raises(SqlTypeError) as err:
            check_fragment(db, ["posts", "topics"],
                           "topics.title IN (SELECT topic_id FROM "
                           "topic_allowed_groups WHERE group_id = ?)",
                           ["integer"])
        assert "topics.title" in str(err.value)

    def test_fixed_query_ok(self, db):
        check_fragment(db, ["posts", "topics"],
                       "posts.topic_id IN (SELECT topic_id FROM "
                       "topic_allowed_groups WHERE group_id = ?)",
                       ["integer"])

    def test_unknown_column(self, db):
        with pytest.raises(SqlTypeError):
            check_fragment(db, ["posts"], "missing_col = 3", [])

    def test_unknown_table(self, db):
        with pytest.raises(SqlTypeError):
            check_fragment(db, ["posts"], "ghosts.name = 'x'", [])

    def test_placeholder_kind_mismatch(self, db):
        with pytest.raises(SqlTypeError):
            check_fragment(db, ["posts"], "topic_id = ?", ["string"])

    def test_missing_placeholder_arg(self, db):
        with pytest.raises(SqlTypeError):
            check_fragment(db, ["posts"], "topic_id = ?", [])

    def test_boolean_ordering_rejected(self, db):
        db.add_column("posts", "deleted", "boolean")
        with pytest.raises(SqlTypeError):
            check_fragment(db, ["posts"], "deleted > true", [])

    def test_unqualified_column_resolution(self, db):
        check_fragment(db, ["posts", "topics"], "views > 3", [])


class TestEdgeCases:
    """ISSUE 2 satellite coverage: nested subqueries, IS NULL, placeholder
    kinds, and numeric-kind compatibility."""

    def test_nested_in_subquery_ok(self, db):
        check_fragment(
            db, ["topics"],
            "id IN (SELECT topic_id FROM posts WHERE topic_id IN "
            "(SELECT topic_id FROM topic_allowed_groups WHERE group_id = ?))",
            ["integer"])

    def test_nested_in_subquery_inner_mismatch_detected(self, db):
        with pytest.raises(SqlTypeError) as err:
            check_fragment(
                db, ["topics"],
                "id IN (SELECT topic_id FROM posts WHERE raw IN "
                "(SELECT topic_id FROM topic_allowed_groups))",
                [])
        assert "raw" in str(err.value)

    def test_in_subquery_multi_column_select_rejected(self, db):
        with pytest.raises(SqlTypeError) as err:
            check_fragment(
                db, ["topics"],
                "id IN (SELECT topic_id, group_id FROM topic_allowed_groups)",
                [])
        assert "exactly one column" in str(err.value)

    def test_is_null_checks_its_operand(self, db):
        check_fragment(db, ["topics"], "title IS NULL", [])
        check_fragment(db, ["topics"], "title IS NOT NULL AND views > 0", [])
        with pytest.raises(SqlTypeError):
            check_fragment(db, ["topics"], "missing_col IS NULL", [])

    def test_null_literal_compares_with_any_kind(self, db):
        check_fragment(db, ["topics"], "title = NULL", [])
        check_fragment(db, ["topics"], "views <> NULL", [])

    def test_placeholder_kind_mismatch_in_in_list(self, db):
        check_fragment(db, ["posts"], "topic_id IN (?, ?)",
                       ["integer", "integer"])
        with pytest.raises(SqlTypeError) as err:
            check_fragment(db, ["posts"], "topic_id IN (?, ?)",
                           ["integer", "string"])
        assert "topic_id" in str(err.value)

    def test_placeholder_kind_mismatch_in_subquery(self, db):
        with pytest.raises(SqlTypeError):
            check_fragment(
                db, ["posts"],
                "topic_id IN (SELECT topic_id FROM topic_allowed_groups "
                "WHERE group_id = ?)",
                ["boolean"])

    def test_integer_float_comparisons_are_compatible(self, db):
        db.add_column("topics", "score", "float")
        check_fragment(db, ["topics"], "views > 1.5", [])
        check_fragment(db, ["topics"], "score = 3", [])
        check_fragment(db, ["topics"], "views = score", [])
        check_fragment(db, ["topics"], "views IN (1, 2.5)", [])
        check_fragment(db, ["topics"], "score > ?", ["integer"])

    def test_numeric_string_mixing_still_rejected(self, db):
        db.add_column("topics", "score", "float")
        with pytest.raises(SqlTypeError):
            check_fragment(db, ["topics"], "title = 1.5", [])
        with pytest.raises(SqlTypeError):
            check_fragment(db, ["topics"], "score = 'high'", [])


class TestEvaluator:
    def test_simple_comparison(self, db):
        row = db.all_rows("topics")[0]
        assert eval_where_fragment(db, "topics", [], "views > 3", (), row)
        assert not eval_where_fragment(db, "topics", [], "views > 30", (), row)

    def test_placeholder(self, db):
        row = db.all_rows("topics")[0]
        assert eval_where_fragment(db, "topics", [], "title = ?", ("welcome",), row)

    def test_in_subquery(self, db):
        row = db.all_rows("posts")[0]
        assert eval_where_fragment(
            db, "posts", [],
            "topic_id IN (SELECT topic_id FROM topic_allowed_groups "
            "WHERE group_id = ?)", (7,), row)
        assert not eval_where_fragment(
            db, "posts", [],
            "topic_id IN (SELECT topic_id FROM topic_allowed_groups "
            "WHERE group_id = ?)", (99,), row)

    def test_and_or_not(self, db):
        row = db.all_rows("topics")[0]
        assert eval_where_fragment(db, "topics", [],
                                   "views > 3 AND title = 'welcome'", (), row)
        assert eval_where_fragment(db, "topics", [],
                                   "views > 30 OR title = 'welcome'", (), row)
        assert not eval_where_fragment(db, "topics", [],
                                       "NOT title = 'welcome'", (), row)
