"""Container types: generics, finite hashes, tuples, and const strings.

Finite hash types, tuple types and const string types are the paper's
*heterogeneous* types (§2.2).  They are **mutable type objects**: when the
program mutates a value whose static type is one of these, CompRDL performs
a *weak update* — the shared type object itself is widened in place, and all
previously recorded subtype constraints on it are replayed (§4, "Type
Mutations and Weak Updates").  To support that, each mutable type carries a
constraint log that :func:`repro.rtypes.subtype.subtype` appends to.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.rtypes.core import NominalType, RType, make_union
from repro.rtypes.kinds import Sym

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    pass


class GenericType(RType):
    """An instantiated generic type such as ``Array<String>`` or ``Table<T>``."""

    __slots__ = ("base", "params")

    def __init__(self, base: str, params: Sequence[RType]):
        super().__init__()
        self.base = base
        self.params = tuple(params)

    def _key(self) -> object:
        return (self.base, self.params)

    def _intern_args(self) -> tuple:
        return (self.base, self.params)

    def to_s(self) -> str:
        inner = ", ".join(p.to_s() for p in self.params)
        return f"{self.base}<{inner}>"


class _MutableType(RType):
    """Shared machinery for types subject to weak updates.

    Subclasses compare structurally but hash by class name only, because
    their contents can change after they have been put in a set or dict.
    The ``constraint_log`` records asserted constraints ``other <= self``
    (``"lower"``) and ``self <= other`` (``"upper"``) for replay.
    """

    __slots__ = ("constraint_log",)

    def __init__(self) -> None:
        super().__init__()
        self.constraint_log: list[tuple[str, RType]] = []

    def __hash__(self) -> int:
        return hash(type(self).__name__)

    def record(self, direction: str, other: RType) -> None:
        """Record an asserted constraint for later replay on mutation."""
        entry = (direction, other)
        if entry not in self.constraint_log:
            self.constraint_log.append(entry)


class TupleType(_MutableType):
    """A heterogeneous array type ``[t1, ..., tn]``.

    ``widen_elem`` implements the weak update from §4: writing a value of
    type ``t`` to index ``i`` replaces ``elts[i]`` with ``elts[i] or t``
    (in place, so every alias sees the widened type) and replays the
    recorded constraints.
    """

    __slots__ = ("elts",)

    def __init__(self, elts: Iterable[RType]):
        super().__init__()
        self.elts = list(elts)

    def _key(self) -> object:
        return tuple(self.elts)

    def to_s(self) -> str:
        inner = ", ".join(t.to_s() for t in self.elts)
        return f"[{inner}]"

    def widen_elem(self, index: int, t: RType) -> None:
        """Weakly update element ``index`` to include type ``t``."""
        self.elts[index] = make_union([self.elts[index], t])

    def widen_all(self, t: RType) -> None:
        """Weakly update every element to include ``t`` (e.g. ``push``)."""
        self.elts = [make_union([e, t]) for e in self.elts]

    def promoted(self) -> GenericType:
        """The array type this tuple promotes to: ``Array<t1 or ... or tn>``."""
        if not self.elts:
            return GenericType("Array", [NominalType("Object")])
        return GenericType("Array", [make_union(self.elts)])


class FiniteHashType(_MutableType):
    """A heterogeneous hash type ``{k1: t1, ..., kn: tn}``.

    Keys are symbols (:class:`repro.rtypes.kinds.Sym`) or strings.  ``rest``
    optionally types unknown extra keys (``**``); ``optional_keys`` marks
    keys that may be absent.
    """

    __slots__ = ("elts", "rest", "optional_keys")

    def __init__(
        self,
        elts: Mapping[object, RType],
        rest: RType | None = None,
        optional_keys: Iterable[object] = (),
    ):
        super().__init__()
        self.elts: dict[object, RType] = dict(elts)
        self.rest = rest
        self.optional_keys = set(optional_keys)

    def _key(self) -> object:
        return (
            tuple(sorted(((str(k), v) for k, v in self.elts.items()), key=lambda kv: kv[0])),
            self.rest,
            frozenset(str(k) for k in self.optional_keys),
        )

    def to_s(self) -> str:
        parts = []
        for key, value in self.elts.items():
            opt = "?" if key in self.optional_keys else ""
            name = key.name if isinstance(key, Sym) else repr(key)
            parts.append(f"{name}: {opt}{value.to_s()}")
        if self.rest is not None:
            parts.append(f"**{self.rest.to_s()}")
        return "{ " + ", ".join(parts) + " }"

    def widen_key(self, key: object, t: RType) -> None:
        """Weakly update ``key`` to include type ``t`` (adds the key if new)."""
        if key in self.elts:
            self.elts[key] = make_union([self.elts[key], t])
        else:
            self.elts[key] = t
            self.optional_keys.add(key)

    def merged(self, other: "FiniteHashType") -> "FiniteHashType":
        """A new finite hash combining this one's entries with ``other``'s.

        Used by the ``joins`` comp type to build joined table schemas.
        """
        elts = dict(self.elts)
        elts.update(other.elts)
        return FiniteHashType(elts, rest=None, optional_keys=set())

    def key_type(self) -> RType:
        """The promoted key type (``Symbol`` or ``String`` union)."""
        from repro.rtypes.core import SingletonType

        keys = [SingletonType(k) if isinstance(k, Sym) else NominalType("String") for k in self.elts]
        if not keys:
            return NominalType("Object")
        return make_union([NominalType(k.base_name) if isinstance(k, SingletonType) else k for k in keys])

    def value_type(self) -> RType:
        """The promoted value type: union of all entry types (and rest)."""
        values = list(self.elts.values())
        if self.rest is not None:
            values.append(self.rest)
        if not values:
            return NominalType("Object")
        return make_union(values)

    def promoted(self) -> GenericType:
        """The hash type this finite hash promotes to (§2.2)."""
        return GenericType("Hash", [self.key_type(), self.value_type()])


class ConstStringType(_MutableType):
    """The type of a string literal that is never written to (§2.2).

    CompRDL treats const strings as singletons, enabling the SQL checker to
    see query text at type-checking time.  Mutating a const string promotes
    it (weakly) to plain ``String``.
    """

    __slots__ = ("value", "is_promoted")

    def __init__(self, value: str):
        super().__init__()
        self.value = value
        self.is_promoted = False

    def _key(self) -> object:
        return (self.value, self.is_promoted)

    def to_s(self) -> str:
        if self.is_promoted:
            return "String"
        return repr(self.value)

    def promote(self) -> None:
        """Weak update: forget the known value, becoming plain ``String``."""
        self.is_promoted = True
