"""The storm harness: replay one event sequence on twin universes and
assert every parity invariant at each checkpoint.

Twins (all built from the same subject app, all fed every event):

* ``mem`` — memory backend, serial incremental rechecks (the reference);
* ``sql`` — sqlite backend, serial incremental rechecks;
* ``full`` — memory backend, but every checkpoint marks *everything*
  dirty first: the full-re-check oracle for invariant 2;
* ``warm`` — memory backend, rechecked through warm session workers
  (``storm``/``faults`` profiles only): the oracle for invariant 3.

The ``faults`` profile additionally arms :mod:`repro.obs.faults` through
the environment (session workers re-arm themselves on spawn) — a wedged
``CheckRequest`` reply, an injected storage error mid-journal-replay —
and SIGKILLs a live session worker at a fixed checkpoint.  The invariants
are asserted unchanged: degradation must be invisible in verdicts.

Checkpoints additionally assert membership-backend parity (invariant 5):
every type carried by the reference twin's check specs, probed against a
fixed value corpus, must produce identical verdicts from the compiled
predicates and the structural ``value_has_type`` walker.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field

from repro.obs import faults as obs_faults
from repro.obs.spans import bump
from repro.fuzz.events import Step, probe_source
from repro.fuzz.generate import SchemaModel, generate_steps

PROFILES = ("migrations", "storm", "faults")

#: faults profile: which checkpoint (0-based) SIGKILLs a session worker
KILL_AT_CHECKPOINT = 1
#: faults profile: the armed fault plan (see repro.obs.faults) — a wedged
#: CheckRequest reply on each worker's third request, and a storage error
#: mid-way through a journal replay (a genuine partial migration)
FAULT_PLAN = (
    ("worker.CheckRequest", "wedge", None, 2, 1),   # arg filled from config
    ("db.replay.event", "error", "operational", 3, 1),
)


class InvariantViolation(AssertionError):
    """One parity invariant failed at a checkpoint."""

    def __init__(self, invariant: str, step: int, detail: str):
        super().__init__(f"[{invariant}] at step {step}: {detail}")
        self.invariant = invariant
        self.step = step
        self.detail = detail


@dataclass
class StormConfig:
    seed: int = 0
    steps: int = 50
    profile: str = "storm"
    app: str = "huginn"
    check_every: int = 5
    workers: int = 2
    #: faults profile: per-recv reply deadline for warm session workers
    deadline_s: float = 3.0

    def __post_init__(self):
        if self.profile not in PROFILES:
            raise ValueError(f"unknown profile {self.profile!r} "
                             f"(choose from {', '.join(PROFILES)})")

    @property
    def warm(self) -> bool:
        return self.profile in ("storm", "faults")

    def repro_command(self) -> str:
        return (f"python -m repro.fuzz --seed {self.seed} "
                f"--steps {self.steps} --profile {self.profile} "
                f"--app {self.app}")


@dataclass
class FuzzReport:
    """One storm run's outcome (``ok`` iff every invariant held)."""

    config: StormConfig
    events: list = field(default_factory=list)
    steps_run: int = 0
    skipped: int = 0
    checkpoints: int = 0
    #: checkpoints whose warm round actually ran on session workers (not a
    #: serial fallback) — invariant 3 is vacuous when this stays 0
    warm_remote: int = 0
    violation: InvariantViolation | None = None
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.violation is None

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"FAIL ({self.violation.invariant})"
        warm = (f" warm_remote={self.warm_remote}"
                if self.config.warm else "")
        return (f"seed={self.config.seed} profile={self.config.profile} "
                f"steps={self.steps_run} (skipped {self.skipped}) "
                f"checkpoints={self.checkpoints}{warm} "
                f"wall={self.wall_s:.1f}s — {verdict}")


# ---------------------------------------------------------------------------
# parity keys (the idioms the backend-parity suite established)
# ---------------------------------------------------------------------------

def _schema_key(db):
    return [(name, [(c.name, c.kind) for c in schema.columns.values()])
            for name, schema in db.tables.items()]


def _journal_key(db):
    return [(e.kind, e.generation, e.table, e.column, e.detail, e.payload)
            for e in db.journal.events_since(0)]


def _report_key(report):
    return (list(report.checked_methods), [str(e) for e in report.errors],
            report.casts_used, report.oracle_casts)


def _membership_probes(interp) -> tuple:
    """The fixed value corpus for invariant 5: one probe per runtime-value
    shape the membership walker dispatches on, accept and reject paths
    both reachable for every constructor the check specs carry."""
    from repro.runtime.objects import RArray, RHash, RString, Sym

    return (
        None, True, False, 0, 3, 2.5,
        RString("probe"), RString(""), Sym("id"),
        RArray([1, 2]), RArray([1, RString("x")]),
        RHash.from_pairs([(Sym("id"), 1), (Sym("name"), RString("n"))]),
        interp.classes["Integer"],
    )


def _predicate(where):
    _op, column, value = where
    return lambda row: row.get(column) == value


def _apply_step(rdl, step: Step, label: str) -> None:
    db = rdl.db
    op = step.op
    if op == "create_table":
        db.create_table(step.table, **{name: kind
                                       for name, kind in step.columns})
        rdl.load(f"class {step.cls} < ActiveRecord::Base\nend\n")
    elif op == "add_column":
        db.add_column(step.table, step.column, step.kind)
    elif op == "drop_column":
        db.drop_column(step.table, step.column)
    elif op == "rename_column":
        db.rename_column(step.table, step.column, step.to)
    elif op == "rename_table":
        db.rename_table(step.table, step.to)
        rdl.load(f"class {step.cls} < ActiveRecord::Base\nend\n")
    elif op == "drop_table":
        db.drop_table(step.table)
    elif op == "insert":
        db.insert(step.table, dict(step.values))
    elif op == "update":
        db.update_rows(step.table, _predicate(step.where), dict(step.values))
    elif op == "delete":
        db.delete_rows(step.table, _predicate(step.where))
    elif op == "load_probe":
        rdl.load(probe_source(step, label))
    else:
        raise ValueError(f"unknown fuzz op {step.op!r}")


class _Storm:
    """One run's twin universes plus the checkpoint logic."""

    def __init__(self, config: StormConfig):
        from repro.apps import app_for_label

        self.config = config
        app = app_for_label(config.app)
        self.label = app.label
        self.mem = app.build(backend="memory")
        self.sql = app.build(backend="sqlite")
        self.full = app.build(backend="memory")
        self.twins = [self.mem, self.sql, self.full]
        self.warm = None
        if config.warm:
            self.warm = app.build(backend="memory")
            if config.profile == "faults":
                self.warm.warm_deadline_s = config.deadline_s
            self.twins.append(self.warm)
        for rdl in self.twins:
            rdl.check_all(self.label)
        self.model = SchemaModel.of_universe(self.mem)
        self.probes = _membership_probes(self.mem.interp)
        self.checkpoints = 0
        self.warm_remote = 0

    def close(self) -> None:
        for rdl in self.twins:
            rdl.shutdown_warm()

    def apply(self, step: Step) -> None:
        for rdl in self.twins:
            _apply_step(rdl, step, self.label)

    # -- the five invariants -------------------------------------------
    def checkpoint(self, step_index: int) -> None:
        bump("fuzz.checks")
        index = self.checkpoints
        self.checkpoints += 1
        if (self.config.profile == "faults" and index == KILL_AT_CHECKPOINT):
            self._kill_one_session_worker()

        serial = self.mem.recheck_dirty()
        serial_key = _report_key(serial)

        # invariant 1: backend parity — verdicts, schemas, rows, journal
        sqlite_key = _report_key(self.sql.recheck_dirty())
        if sqlite_key != serial_key:
            self._fail("backend-verdicts", step_index,
                       f"memory {serial_key!r}\n  != sqlite {sqlite_key!r}")
        if _schema_key(self.mem.db) != _schema_key(self.sql.db):
            self._fail("backend-schema", step_index,
                       f"memory {_schema_key(self.mem.db)!r}\n  != sqlite "
                       f"{_schema_key(self.sql.db)!r}")
        if repr(self.mem.db.schema_hash()) != repr(self.sql.db.schema_hash()):
            self._fail("backend-schema-hash", step_index,
                       "schema_hash() diverged between backends")
        for table in self.mem.db.tables:
            if self.mem.db.all_rows(table) != self.sql.db.all_rows(table):
                self._fail("backend-rows", step_index,
                           f"rows of {table!r} diverged:\n  memory "
                           f"{self.mem.db.all_rows(table)!r}\n  sqlite "
                           f"{self.sql.db.all_rows(table)!r}")
        if _journal_key(self.mem.db) != _journal_key(self.sql.db) \
                or self.mem.db.version != self.sql.db.version:
            self._fail("backend-journal", step_index,
                       "journal streams diverged between backends")

        # invariant 2: incremental ≡ full re-check
        self.full.incremental.mark_all_dirty()
        full_key = _report_key(self.full.recheck_dirty())
        if full_key != serial_key:
            self._fail("incremental-vs-full", step_index,
                       f"incremental {serial_key!r}\n  != full {full_key!r}")

        # invariant 3: warm sessions ≡ serial
        if self.warm is not None:
            warm_key = _report_key(
                self.warm.recheck_dirty(workers=self.config.workers))
            last_run = self.warm.warm_engine and \
                self.warm.warm_engine.last_warm_run
            if last_run is not None and last_run.remote:
                self.warm_remote += 1
                bump("fuzz.warm_remote")
            if warm_key != serial_key:
                run = self.warm.warm_engine and self.warm.warm_engine.last_warm_run
                self._fail("warm-vs-serial", step_index,
                           f"warm {warm_key!r}\n  != serial {serial_key!r}"
                           f"\n  warm run: {run!r}")

        # invariant 4: static footprints cover dynamic deps
        from repro.analysis.footprint import FootprintAnalyzer

        analyzer = FootprintAnalyzer(self.mem.registry, self.mem.db,
                                     self.mem.interp)
        for key in self.mem.incremental.results:
            deps = self.mem.incremental.tracker.deps_of(key)
            if deps is None:
                continue
            footprint = analyzer.footprint_of(key)
            if not footprint.covers(deps):
                self._fail(
                    "static-footprint", step_index,
                    f"{key}: static tables {sorted(footprint.tables)} "
                    f"(wildcard={footprint.wildcard}) does not cover "
                    f"dynamic tables {sorted(deps.tables)}")

        # invariant 5: compiled membership ≡ structural walker — every
        # type the §4 guards would test, probed against a fixed value
        # corpus under both backends (the schema churn above is exactly
        # what reshapes the comp-evaluated types these guards carry)
        from repro.runtime.member_compile import predicate_for
        from repro.runtime.membership import value_has_type

        interp = self.mem.interp
        for spec in interp.check_table.values():
            for rtype in list(spec.arg_types) + [spec.ret_type]:
                pred = predicate_for(rtype)
                for value in self.probes:
                    bump("fuzz.member_probes")
                    compiled = pred(interp, value)
                    structural = value_has_type(interp, value, rtype)
                    if compiled != structural:
                        self._fail(
                            "membership-parity", step_index,
                            f"{spec.method_desc}: {rtype.to_s()} vs "
                            f"{value!r}: compiled={compiled} "
                            f"structural={structural}")

    def _fail(self, invariant: str, step_index: int, detail: str):
        bump("fuzz.violations")
        raise InvariantViolation(invariant, step_index, detail)

    def _kill_one_session_worker(self) -> None:
        engine = self.warm.warm_engine if self.warm is not None else None
        pool = getattr(engine, "_session_pool", None)
        if pool is None:
            return
        victims = [handle for handle in pool.live() if handle.attached]
        if not victims:
            return
        victim = victims[0]
        os.kill(victim.process.pid, signal.SIGKILL)
        victim.process.join(timeout=10)
        bump("faults.worker_kills")


def run_events(events, config: StormConfig) -> FuzzReport:
    """Replay a recorded event list (corpus files, shrink candidates).

    Non-applicable steps — preconditions deleted by the shrinker — are
    skipped, so every subsequence is runnable.  Any engine crash is
    reported as an ``engine-crash`` violation rather than propagated: for
    the fuzzer, "never crashes" is an invariant like the others.
    """
    report = FuzzReport(config=config, events=list(events))
    start = time.perf_counter()
    storm = None
    env_before = os.environ.get("REPRO_FAULTS")
    try:
        if config.profile == "faults":
            os.environ["REPRO_FAULTS"] = _fault_env(config)
        storm = _Storm(config)
        try:
            for index, step in enumerate(events):
                bump("fuzz.steps")
                if not storm.model.applies(step):
                    bump("fuzz.skipped")
                    report.skipped += 1
                    continue
                storm.model.apply(step)
                report.steps_run += 1
                if step.op == "check":
                    storm.checkpoint(index)
                else:
                    storm.apply(step)
            if not events or events[-1].op != "check":
                storm.checkpoint(len(events))
        except InvariantViolation as violation:
            report.violation = violation
        except Exception as exc:  # noqa: BLE001 — a crash IS a finding
            bump("fuzz.violations")
            report.violation = InvariantViolation(
                "engine-crash", report.steps_run,
                f"{type(exc).__name__}: {exc}")
    finally:
        if env_before is None:
            os.environ.pop("REPRO_FAULTS", None)
        else:
            os.environ["REPRO_FAULTS"] = env_before
        if storm is not None:
            report.checkpoints = storm.checkpoints
            report.warm_remote = storm.warm_remote
            storm.close()
    report.wall_s = time.perf_counter() - start
    return report


def run_storm(config: StormConfig) -> FuzzReport:
    """Generate a seeded storm and run it (the CLI's entry point)."""
    from repro.apps import app_for_label

    app = app_for_label(config.app)
    model = SchemaModel.of_universe(app.build(backend="memory"))
    events = generate_steps(config.seed, model, config.steps,
                            check_every=config.check_every)
    return run_events(events, config)


def _fault_env(config: StormConfig) -> str:
    """The faults profile's armed plan as a REPRO_FAULTS value."""
    specs = []
    for site, action, arg, after, times in FAULT_PLAN:
        if action == "wedge" and arg is None:
            arg = f"{config.deadline_s * 2:g}"
        specs.append(obs_faults.FaultSpec(
            site=site, action=action, arg=arg, after=after,
            times=times).encode())
    return ";".join(specs)


def max_wall_bound(config: StormConfig) -> float:
    """The graceful-degradation wall-clock bound for a faults run: every
    wedge costs at most one deadline per (re)spawned worker, plus generous
    slack for attaches and serial fallbacks."""
    return config.deadline_s * 8 + 120.0
