"""Interpreter behaviour tests."""

import pytest

from repro.rtypes.kinds import Sym
from repro.runtime import Interp, RArray, RHash, RString
from repro.runtime.interp import RaiseSignal


@pytest.fixture
def interp():
    return Interp()


def run(interp, source):
    return interp.run(source)


class TestBasics:
    def test_arithmetic(self, interp):
        assert run(interp, "1 + 2 * 3") == 7

    def test_string_concat(self, interp):
        result = run(interp, "'a' + 'b'")
        assert isinstance(result, RString) and result.val == "ab"

    def test_interpolation(self, interp):
        result = run(interp, 'name = "world"\n"hello #{name}"')
        assert result.val == "hello world"

    def test_truthiness(self, interp):
        assert run(interp, "if nil\n 1\nelse\n 2\nend") == 2
        assert run(interp, "if 0\n 1\nelse\n 2\nend") == 1

    def test_and_or(self, interp):
        assert run(interp, "nil || 5") == 5
        assert run(interp, "3 && 4") == 4
        assert run(interp, "false && boom()") is False

    def test_while_loop(self, interp):
        assert run(interp, "x = 0\nwhile x < 5\n x += 1\nend\nx") == 5

    def test_case_when(self, interp):
        source = "def f(x)\n case x\n when Integer\n 'int'\n when String\n 'str'\n else\n 'other'\n end\nend\nf(3).val" \
            .replace(".val", "")
        assert run(interp, source).val == "int"

    def test_unless(self, interp):
        assert run(interp, "unless false\n 7\nend") == 7


class TestMethodsAndClasses:
    def test_method_def_and_call(self, interp):
        assert run(interp, "def double(x)\n x * 2\nend\ndouble(21)") == 42

    def test_default_params(self, interp):
        assert run(interp, "def f(a, b = 10)\n a + b\nend\nf(1)") == 11

    def test_class_with_ivars(self, interp):
        source = """
class Point
  def initialize(x, y)
    @x = x
    @y = y
  end
  def sum
    @x + @y
  end
end
Point.new(3, 4).sum
"""
        assert run(interp, source) == 7

    def test_class_method(self, interp):
        source = "class A\n def self.hi\n 'hello'\n end\nend\nA.hi"
        assert run(interp, source).val == "hello"

    def test_inheritance(self, interp):
        source = """
class Animal
  def speak
    'generic'
  end
end
class Dog < Animal
end
Dog.new.speak
"""
        assert run(interp, source).val == "generic"

    def test_attr_accessor(self, interp):
        source = """
class P
  attr_accessor :name
end
p1 = P.new
p1.name = 'x'
p1.name
"""
        assert run(interp, source).val == "x"

    def test_is_a(self, interp):
        assert run(interp, "3.is_a?(Integer)") is True
        assert run(interp, "3.is_a?(Numeric)") is True
        assert run(interp, "3.is_a?(String)") is False

    def test_return_early(self, interp):
        source = "def f(x)\n return 'neg' if x < 0\n 'pos'\nend\nf(-1)"
        assert run(interp, source).val == "neg"


class TestBlocks:
    def test_map_block(self, interp):
        result = run(interp, "[1,2,3].map { |v| v + 1 }")
        assert result.items == [2, 3, 4]

    def test_each_accumulates_closure(self, interp):
        source = "total = 0\n[1,2,3].each { |v| total += v }\ntotal"
        assert run(interp, source) == 6

    def test_select(self, interp):
        result = run(interp, "[1,2,3,4].select { |v| v.even? }")
        assert result.items == [2, 4]

    def test_yield(self, interp):
        source = "def twice\n yield(1) + yield(2)\nend\ntwice { |x| x * 10 }"
        assert run(interp, source) == 30

    def test_block_given(self, interp):
        source = "def f\n if block_given?\n yield\n else\n 0\n end\nend\nf { 9 } + f"
        assert run(interp, source) == 9

    def test_break_in_block(self, interp):
        source = "[1,2,3].each { |v| break 99 if v == 2 }"
        assert run(interp, source) == 99

    def test_reduce(self, interp):
        assert run(interp, "[1,2,3,4].reduce(0) { |acc, v| acc + v }") == 10

    def test_symbol_to_proc(self, interp):
        result = run(interp, "['a','b'].map(&:upcase)")
        assert [s.val for s in result.items] == ["A", "B"]

    def test_lambda_call(self, interp):
        assert run(interp, "f = lambda { |x| x * 2 }\nf.call(5)") == 10

    def test_return_in_block_exits_method(self, interp):
        source = "def f\n [1,2,3].each { |v| return v if v == 2 }\n 0\nend\nf"
        assert run(interp, source) == 2


class TestCollections:
    def test_hash_literal_and_lookup(self, interp):
        result = run(interp, "h = { a: 1, b: 2 }\nh[:b]")
        assert result == 2

    def test_hash_store(self, interp):
        result = run(interp, "h = {}\nh[:x] = 5\nh[:x]")
        assert result == 5

    def test_hash_merge(self, interp):
        result = run(interp, "{ a: 1 }.merge({ b: 2 })")
        assert isinstance(result, RHash) and len(result) == 2

    def test_array_first_last(self, interp):
        assert run(interp, "[1,2,3].first") == 1
        assert run(interp, "[1,2,3].last") == 3

    def test_array_join(self, interp):
        assert run(interp, "[1,2,3].join('-')").val == "1-2-3"

    def test_array_include(self, interp):
        assert run(interp, "[1,2,3].include?(2)") is True

    def test_string_split(self, interp):
        result = run(interp, "'a,b,c'.split(',')")
        assert [s.val for s in result.items] == ["a", "b", "c"]

    def test_string_mutation(self, interp):
        assert run(interp, "s = 'ab'\ns << 'c'\ns").val == "abc"

    def test_range_to_a(self, interp):
        assert run(interp, "(1..4).to_a").items == [1, 2, 3, 4]

    def test_nested_access(self, interp):
        result = run(interp, "h = { info: ['x', 'y'] }\nh[:info].first")
        assert result.val == "x"


class TestExceptions:
    def test_raise_and_rescue(self, interp):
        source = "begin\n raise 'boom'\nrescue => e\n e.message\nend"
        assert run(interp, source).val == "boom"

    def test_rescue_class_filter(self, interp):
        source = "begin\n raise ArgumentError, 'bad'\nrescue ArgumentError => e\n 'caught'\nend"
        assert run(interp, source).val == "caught"

    def test_unmatched_class_propagates(self, interp):
        with pytest.raises(RaiseSignal):
            run(interp, "begin\n raise ArgumentError, 'x'\nrescue NameError\n 1\nend")

    def test_undefined_constant_raises(self, interp):
        with pytest.raises(RaiseSignal) as exc:
            run(interp, "Field")
        assert "uninitialized constant Field" in exc.value.exc.message

    def test_nomethod_error(self, interp):
        with pytest.raises(RaiseSignal) as exc:
            run(interp, "3.upcase")
        assert "undefined method" in exc.value.exc.message

    def test_puts_captured(self, interp):
        run(interp, "puts 'hello'")
        assert interp.stdout == ["hello\n"]


class TestOutputAndMisc:
    def test_multi_assign(self, interp):
        assert run(interp, "a, b = 1, 2\na + b") == 3

    def test_op_assign_or(self, interp):
        assert run(interp, "x = nil\nx ||= 4\nx") == 4

    def test_defined_probe(self, interp):
        assert run(interp, "defined?(NotAConstant)") is None

    def test_freeze_string(self, interp):
        from repro.runtime.errors import RubyError

        with pytest.raises(RubyError):
            run(interp, "s = 'a'.freeze\ns << 'b'")

    def test_send(self, interp):
        assert run(interp, "3.send(:+, 4)") == 7

    def test_to_s_chain(self, interp):
        assert run(interp, "123.to_s").val == "123"

    def test_sort(self, interp):
        assert run(interp, "[3,1,2].sort").items == [1, 2, 3]

    def test_sort_by(self, interp):
        result = run(interp, "['bb','a','ccc'].sort_by { |s| s.length }")
        assert [s.val for s in result.items] == ["a", "bb", "ccc"]
