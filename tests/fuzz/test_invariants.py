"""Small fixed-seed storms: the five invariants hold end-to-end."""

import pytest

from repro.fuzz import Step, StormConfig, run_events, run_storm

pytestmark = pytest.mark.slow


def test_migrations_profile_small_storm():
    report = run_storm(StormConfig(seed=0, steps=20, profile="migrations"))
    assert report.ok, report.summary()
    assert report.checkpoints >= 4


def test_storm_profile_checks_warm_sessions_remotely():
    report = run_storm(StormConfig(seed=1, steps=15, profile="storm"))
    assert report.ok, report.summary()
    # invariant 3 must not be vacuous: at least one warm round has to run
    # on real session workers, not the serial fallback
    assert report.warm_remote >= 1, report.summary()


def test_null_insert_regression():
    # the first storm ever run found this one: the memory backend stored
    # an explicit None where sqlite reads the column as absent (SQL NULL)
    events = [
        Step(op="insert", table="events", values={"payload": None}),
        Step(op="check"),
    ]
    report = run_events(
        events, StormConfig(seed=0, steps=2, profile="migrations"))
    assert report.ok, report.summary()


def test_violations_are_reported_not_raised():
    # an inapplicable-only sequence still ends on a clean final checkpoint
    events = [Step(op="insert", table="no_such_table", values={"x": 1})]
    report = run_events(
        events, StormConfig(seed=0, steps=1, profile="migrations"))
    assert report.ok
    assert report.skipped == 1
    assert report.checkpoints == 1


def test_fuzz_counters_in_metrics_snapshot():
    from repro.obs.metrics import metrics_snapshot

    run_storm(StormConfig(seed=2, steps=10, profile="migrations"))
    snap = metrics_snapshot()
    assert snap.get("fuzz.checks", 0) >= 1
    assert snap.get("fuzz.steps", 0) >= 10
    assert "faults.enabled" in snap
    # invariant 5 must not be vacuous: the subject app carries check
    # specs, so every checkpoint probes compiled-vs-structural membership
    assert snap.get("fuzz.member_probes", 0) >= 1


def test_shrinker_finds_small_repro():
    from repro.fuzz import shrink_events

    # stand-in oracle: the failure needs the one insert step, nothing else
    full = [Step(op="insert", table="events", values={"payload": None}),
            Step(op="add_column", table="agents", column="fz_x",
                 kind="integer"),
            Step(op="check"),
            Step(op="insert", table="agents", values={"fz_x": 3}),
            Step(op="check")]

    def fails(candidate):
        return any(step.op == "insert" and step.table == "events"
                   for step in candidate)

    minimal = shrink_events(full, fails)
    assert len(minimal) == 1
    assert minimal[0].op == "insert" and minimal[0].table == "events"
