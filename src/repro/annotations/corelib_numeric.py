"""Comp type annotations for Integer (paper: 108) and Float (paper: 98).

These implement the paper's §2.4 constant folding: arithmetic on singleton
numeric types yields singleton result types (``1+1 : Singleton(2)``).
As the paper observes, the precision is rarely exercised in app code; the
annotations exist to reproduce Table 1 and the §2.4 experiment.
"""

from __future__ import annotations

from repro.annotations.sigs import install_table


def _arith(op: str) -> str:
    return f"(t<:Numeric) -> «num_fold(tself, t, :{op})»/Numeric"


def _cmp(op: str) -> str:
    return f"(t<:Numeric) -> «num_cmp_fold(tself, t, :{op})»/%bool"


def _unary(op: str, fallback: str) -> str:
    name = op.replace("?", "?")
    return f"() -> «num_fold_unary(tself, :{name})»/{fallback}"


def _common_sigs() -> dict[str, object]:
    return {
        "+": _arith("+"),
        "-": _arith("-"),
        "*": _arith("*"),
        "**": _arith("**"),
        "pow": _arith("**"),
        "/": "(t<:Numeric) -> «num_div_fold(tself, t)»/Numeric",
        "%": "(Numeric) -> Numeric",
        "modulo": "(Numeric) -> Numeric",
        "fdiv": "(Numeric) -> Float",
        "<": _cmp("<"),
        ">": _cmp(">"),
        "<=": _cmp("<="),
        ">=": _cmp(">="),
        "==": "(t<:Object) -> «num_cmp_fold(tself, t, :==)»/%bool",
        "!=": "(t<:Object) -> «num_cmp_fold(tself, t, :!=)»/%bool",
        "<=>": "(Numeric) -> Integer or nil",
        "abs": _unary("abs", "Numeric"),
        "magnitude": _unary("abs", "Numeric"),
        "zero?": _unary("zero?", "%bool"),
        "nonzero?": "() -> Numeric or nil",
        "positive?": _unary("positive?", "%bool"),
        "negative?": _unary("negative?", "%bool"),
        "to_i": _unary("to_i", "Integer"),
        "to_int": _unary("to_i", "Integer"),
        "to_f": _unary("to_f", "Float"),
        "to_s": "(?Integer) -> String",
        "inspect": "() -> String",
        "ceil": _unary("ceil", "Integer"),
        "floor": _unary("floor", "Integer"),
        "round": "(?Integer) -> Numeric",
        "truncate": _unary("to_i", "Integer"),
        "divmod": "(Numeric) -> [Numeric, Numeric]",
        "coerce": "(Numeric) -> [Float, Float]",
        "between?": "(Numeric, Numeric) -> %bool",
        "clamp": "(Numeric, Numeric) -> Numeric",
        "step": "(Numeric, ?Numeric) -> Array<Numeric>",
        "finite?": "() -> %bool",
        "hash": "() -> Integer",
        "eql?": "(Object) -> %bool",
    }


INTEGER_SIGS: dict[str, object] = {
    **_common_sigs(),
    "succ": _unary("succ", "Integer"),
    "next": _unary("next", "Integer"),
    "pred": _unary("pred", "Integer"),
    "even?": _unary("even?", "%bool"),
    "odd?": _unary("odd?", "%bool"),
    "integer?": "() -> true",
    "chr": "() -> String",
    "ord": "() -> «tself»/Integer",
    "digits": "(?Integer) -> Array<Integer>",
    "bit_length": "() -> Integer",
    "gcd": "(Integer) -> Integer",
    "lcm": "(Integer) -> Integer",
    "times": "() { (Integer) -> Object } -> Integer",
    "upto": "(Integer) { (Integer) -> Object } -> Integer",
    "downto": "(Integer) { (Integer) -> Object } -> Integer",
    "size": "() -> Integer",
    "[]": "(Integer) -> Integer",
    "&": "(Integer) -> Integer",
    "|": "(Integer) -> Integer",
    "<<": "(Integer) -> Integer",
    ">>": "(Integer) -> Integer",
    "-@": _unary("-@", "Integer"),
}

FLOAT_SIGS: dict[str, object] = {
    **_common_sigs(),
    "nan?": "() -> %bool",
    "infinite?": "() -> Integer or nil",
    "integer?": "() -> false",
    "-@": _unary("-@", "Float"),
}


def install_integer(rdl) -> dict[str, int]:
    return install_table(rdl, "Integer", INTEGER_SIGS)


def install_float(rdl) -> dict[str, int]:
    return install_table(rdl, "Float", FLOAT_SIGS)
