"""Object / Kernel / Class native methods, including the RDL directives.

The annotation directives (``type``, ``var_type``, ``comp_helper`` …) are
ordinary methods, exactly as in RDL: running the program *is* how
annotations get registered (§2).  They delegate to ``interp.registry`` when
a CompRDL facade has attached one, and are silent no-ops otherwise.
"""

from __future__ import annotations

from repro.rtypes.kinds import Sym
from repro.runtime.errors import RubyError
from repro.runtime.interp import RaiseSignal
from repro.runtime.corelib.helpers import native, arg_or
from repro.runtime.objects import (
    RArray,
    RBlock,
    RClass,
    RException,
    RHash,
    RMethod,
    RObject,
    RString,
    ruby_eq,
    ruby_inspect,
    ruby_to_s,
)


def install_object_kernel(interp) -> None:
    obj = interp.classes["Object"]

    # -- identity and equality -------------------------------------------
    native(obj, "==", lambda i, r, a, b: ruby_eq(r, arg_or(a, 0)))
    native(obj, "!=", lambda i, r, a, b: not ruby_eq(r, arg_or(a, 0)))
    native(obj, "equal?", lambda i, r, a, b: r is arg_or(a, 0))
    native(obj, "eql?", lambda i, r, a, b: ruby_eq(r, arg_or(a, 0)))
    native(obj, "nil?", lambda i, r, a, b: r is None)
    native(obj, "!", lambda i, r, a, b: r is None or r is False)

    def obj_is_a(i, recv, args, block):
        klass = arg_or(args, 0)
        if not isinstance(klass, RClass):
            raise RubyError("TypeError", "class or module required")
        return i.is_a(recv, klass)

    native(obj, "is_a?", obj_is_a)
    native(obj, "kind_of?", obj_is_a)

    def obj_instance_of(i, recv, args, block):
        klass = arg_or(args, 0)
        return isinstance(klass, RClass) and i.class_of(recv) is klass

    native(obj, "instance_of?", obj_instance_of)
    native(obj, "class", lambda i, r, a, b: i.class_of(r))

    def obj_respond_to(i, recv, args, block):
        name = arg_or(args, 0)
        method_name = name.name if isinstance(name, Sym) else ruby_to_s(name)
        if isinstance(recv, RClass):
            return recv.lookup_static(method_name) is not None
        return i.class_of(recv).lookup_instance(method_name) is not None

    native(obj, "respond_to?", obj_respond_to)

    def obj_send(i, recv, args, block):
        if not args:
            raise RubyError("ArgumentError", "send requires a method name")
        name = args[0]
        method_name = name.name if isinstance(name, Sym) else ruby_to_s(name)
        return i.call_method(recv, method_name, list(args[1:]), block, 0)

    native(obj, "send", obj_send)
    native(obj, "public_send", obj_send)

    # -- conversion / display ---------------------------------------------
    native(obj, "to_s", lambda i, r, a, b: RString(ruby_to_s(r)))
    native(obj, "inspect", lambda i, r, a, b: RString(ruby_inspect(r)))
    native(obj, "hash", lambda i, r, a, b: id(r) if isinstance(r, RObject) else hash(ruby_to_s(r)))
    native(obj, "freeze", lambda i, r, a, b: (_freeze(r), r)[1])
    native(obj, "frozen?", lambda i, r, a, b: bool(getattr(r, "frozen", False)))
    native(obj, "dup", lambda i, r, a, b: _dup(r))
    native(obj, "clone", lambda i, r, a, b: _dup(r))
    native(obj, "tap", lambda i, r, a, b: (i.call_block(b, [r], 0), r)[1] if b else r)
    native(obj, "itself", lambda i, r, a, b: r)

    def obj_instance_variable_get(i, recv, args, block):
        name = ruby_to_s(arg_or(args, 0))
        if isinstance(recv, RObject):
            return recv.ivars.get(name)
        if isinstance(recv, RClass):
            return recv.cvars.get(name)
        return None

    native(obj, "instance_variable_get", obj_instance_variable_get)

    def obj_instance_variable_set(i, recv, args, block):
        name = ruby_to_s(arg_or(args, 0))
        value = arg_or(args, 1)
        if isinstance(recv, RObject):
            recv.ivars[name] = value
        elif isinstance(recv, RClass):
            recv.cvars[name] = value
        return value

    native(obj, "instance_variable_set", obj_instance_variable_set)

    # -- Kernel output ------------------------------------------------------
    def kernel_puts(i, recv, args, block):
        if not args:
            i.write_stdout("\n")
        for arg in args:
            if isinstance(arg, RArray):
                for item in arg.items:
                    i.write_stdout(ruby_to_s(item) + "\n")
            else:
                i.write_stdout(ruby_to_s(arg) + "\n")
        return None

    native(obj, "puts", kernel_puts)
    native(obj, "print", lambda i, r, a, b: [i.write_stdout(ruby_to_s(x)) for x in a] and None)

    def kernel_p(i, recv, args, block):
        for arg in args:
            i.write_stdout(ruby_inspect(arg) + "\n")
        if len(args) == 1:
            return args[0]
        return RArray(list(args)) if args else None

    native(obj, "p", kernel_p)
    native(obj, "require", lambda i, r, a, b: True)
    native(obj, "require_relative", lambda i, r, a, b: True)
    def kernel_block_given(i, recv, args, block):
        return bool(i.frame_stack and i.frame_stack[-1].block is not None)

    native(obj, "block_given?", kernel_block_given)

    def kernel_lambda(i, recv, args, block):
        if block is None:
            raise RubyError("ArgumentError", "tried to create Proc without a block")
        block.is_lambda = True
        return block

    native(obj, "lambda", kernel_lambda)
    native(obj, "proc", kernel_lambda)

    def kernel_format(i, recv, args, block):
        template = ruby_to_s(arg_or(args, 0))
        values = [_py_val(v) for v in args[1:]]
        try:
            return RString(template % tuple(values))
        except (TypeError, ValueError) as exc:
            raise RubyError("ArgumentError", f"format: {exc}")

    native(obj, "format", kernel_format)
    native(obj, "sprintf", kernel_format)
    native(obj, "Integer", lambda i, r, a, b: int(ruby_to_s(arg_or(a, 0))))
    native(obj, "Float", lambda i, r, a, b: float(ruby_to_s(arg_or(a, 0))))
    native(obj, "String", lambda i, r, a, b: RString(ruby_to_s(arg_or(a, 0))))
    native(obj, "Array", lambda i, r, a, b: arg_or(a, 0) if isinstance(arg_or(a, 0), RArray) else RArray([] if arg_or(a, 0) is None else [arg_or(a, 0)]))

    # -- class-level helpers (self is an RClass when these run) -------------
    def module_attr(readable: bool, writable: bool):
        def install(i, recv, args, block):
            if not isinstance(recv, RClass):
                raise RubyError("TypeError", "attr_* outside class body")
            for arg in args:
                name = arg.name if isinstance(arg, Sym) else ruby_to_s(arg)
                if readable:
                    def reader(i2, r2, a2, b2, _name=name):
                        return r2.ivars.get("@" + _name) if isinstance(r2, RObject) else None
                    recv.define(name, RMethod(name, native=reader))
                if writable:
                    def writer(i2, r2, a2, b2, _name=name):
                        value = arg_or(a2, 0)
                        if isinstance(r2, RObject):
                            r2.ivars["@" + _name] = value
                        return value
                    recv.define(name + "=", RMethod(name + "=", native=writer))
            return None
        return install

    native(obj, "attr_accessor", module_attr(True, True))
    native(obj, "attr_reader", module_attr(True, False))
    native(obj, "attr_writer", module_attr(False, True))

    # -- RDL annotation directives ------------------------------------------
    def rdl_type(i, recv, args, block):
        if i.registry is not None:
            i.registry.handle_type_directive(i, recv, list(args))
        return None

    native(obj, "type", rdl_type)

    def rdl_var_type(i, recv, args, block):
        if i.registry is not None:
            i.registry.handle_var_type(i, recv, list(args))
        return None

    native(obj, "var_type", rdl_var_type)
    native(obj, "global_type", rdl_var_type)

    def rdl_comp_helper(i, recv, args, block):
        if i.registry is not None:
            i.registry.handle_comp_helper(i, recv, list(args))
        return None

    native(obj, "comp_helper", rdl_comp_helper)

    def rdl_type_cast(i, recv, args, block):
        # RDL.type_cast(e, "T") — at run time a cast is just its value
        return arg_or(args, 0)

    native(obj, "type_cast", rdl_type_cast)

    def rdl_instantiate(i, recv, args, block):
        return arg_or(args, 0)

    native(obj, "instantiate!", rdl_instantiate)

    # RDL namespace object: RDL.type_cast / RDL.db_schema etc.
    rdl = interp.define_class("RDL", "Object")
    native(rdl, "type_cast", rdl_type_cast, static=True)
    native(rdl, "type", rdl_type, static=True)
    native(rdl, "var_type", rdl_var_type, static=True)

    def rdl_db_schema(i, recv, args, block):
        if i.db is None:
            return RHash()
        return i.db.schema_hash()

    native(rdl, "db_schema", rdl_db_schema, static=True)

    def rdl_do_typecheck(i, recv, args, block):
        if i.registry is not None:
            label = arg_or(args, 0)
            i.registry.request_typecheck(label.name if isinstance(label, Sym) else ruby_to_s(label))
        return None

    native(rdl, "do_typecheck", rdl_do_typecheck, static=True)

    # -- Class static methods -------------------------------------------------
    def class_new(i, recv, args, block):
        if not isinstance(recv, RClass):
            raise RubyError("TypeError", "new on non-class")
        return i.new_instance(recv, list(args), block, 0)

    # define() (not a raw smethods write) so the method-table epoch bumps
    # and the lookup/inline caches invalidate
    obj.define("new", RMethod("new", native=class_new), static=True)
    obj.define("name", RMethod("name", native=lambda i, r, a, b: RString(r.name)),
               static=True)
    obj.define("to_s", RMethod("to_s", native=lambda i, r, a, b: RString(r.name)),
               static=True)
    obj.define("superclass",
               RMethod("superclass", native=lambda i, r, a, b: r.superclass),
               static=True)

    # Exception instance methods
    exc = interp.classes["Exception"]
    native(exc, "message", lambda i, r, a, b: r.ivars.get("@message") or RString(""))
    native(exc, "to_s", lambda i, r, a, b: r.ivars.get("@message") or RString(""))

    # NilClass conveniences
    nil_class = interp.classes["NilClass"]
    native(nil_class, "to_s", lambda i, r, a, b: RString(""))
    native(nil_class, "to_a", lambda i, r, a, b: RArray([]))
    native(nil_class, "to_i", lambda i, r, a, b: 0)
    native(nil_class, "inspect", lambda i, r, a, b: RString("nil"))
    native(nil_class, "nil?", lambda i, r, a, b: True)

    # Boolean operators usable as methods (λC's Bool.∧ example)
    for bool_class_name in ("TrueClass", "FalseClass"):
        bool_class = interp.classes[bool_class_name]
        native(bool_class, "&", lambda i, r, a, b: bool(r) and bool(arg_or(a, 0) not in (None, False)))
        native(bool_class, "|", lambda i, r, a, b: bool(r) or bool(arg_or(a, 0) not in (None, False)))
        native(bool_class, "to_s", lambda i, r, a, b: RString("true" if r else "false"))


def _freeze(value: object) -> None:
    if isinstance(value, RString):
        value.frozen = True


def _dup(value: object):
    if isinstance(value, RString):
        return RString(value.val)
    if isinstance(value, RArray):
        return RArray(list(value.items))
    if isinstance(value, RHash):
        return RHash.from_pairs(value.pairs())
    if isinstance(value, RObject) and not isinstance(value, RException):
        clone = RObject(value.rclass)
        clone.ivars = dict(value.ivars)
        return clone
    return value


def _py_val(value: object):
    if isinstance(value, RString):
        return value.val
    if isinstance(value, Sym):
        return value.name
    return value
