"""RRange regression: membership and bound queries must not materialize.

``(0..10**12).include?(5)`` used to be O(1) only by luck of the code path —
``min``/``max``/``size``/``count``/``sum`` and array range-indexing built
the whole element list.  These tests pin the O(1) behaviour by running
billion-element ranges under a timeout that only lazy implementations can
meet.
"""

import time

import pytest

from repro.runtime.interp import Interp, RRange

BIG = 10**12


@pytest.fixture(scope="module")
def interp():
    return Interp()


def run(interp, src):
    return interp.run(src)


def test_includes_is_constant_time_and_correct():
    r = RRange(0, BIG, False)
    start = time.perf_counter()
    assert r.includes(5)
    assert r.includes(BIG)
    assert not r.includes(BIG + 1)
    assert not r.includes(-1)
    assert not r.includes(True)  # booleans are not numeric members
    x = RRange(0, BIG, True)
    assert not x.includes(BIG)
    assert x.includes(BIG - 1)
    assert time.perf_counter() - start < 0.5


def test_bound_queries_do_not_materialize(interp):
    start = time.perf_counter()
    assert run(interp, f"(0..{BIG}).include?(17)") is True
    assert run(interp, f"(0..{BIG}).cover?({BIG + 1})") is False
    assert run(interp, f"(0..{BIG}).size") == BIG + 1
    assert run(interp, f"(0...{BIG}).size") == BIG
    assert run(interp, f"(0..{BIG}).min") == 0
    assert run(interp, f"(0..{BIG}).max") == BIG
    assert run(interp, f"(0...{BIG}).max") == BIG - 1
    assert run(interp, f"(1..{BIG}).sum") == BIG * (BIG + 1) // 2
    assert time.perf_counter() - start < 1.0


def test_case_membership_on_huge_range(interp):
    start = time.perf_counter()
    result = run(interp, f"""
case 42
when 0..{BIG} then "in"
else "out"
end
""")
    assert result.val == "in"
    assert time.perf_counter() - start < 0.5


def test_empty_and_small_ranges_keep_their_semantics(interp):
    assert run(interp, "(3..1).size") == 0
    assert run(interp, "(3..1).min") is None
    assert run(interp, "(3..1).max") is None
    assert run(interp, "(3..1).sum") == 0
    assert run(interp, "(3..1).to_a").items == []
    assert run(interp, "(1..4).to_a").items == [1, 2, 3, 4]
    assert run(interp, "(1...4).to_a").items == [1, 2, 3]
    assert run(interp, "(1..3).sum") == 6
    assert run(interp, "(2..2).min") == 2


def test_array_range_index_uses_bounds(interp):
    assert run(interp, "[10, 20, 30, 40][1..2]").items == [20, 30]
    assert run(interp, "[10, 20, 30, 40][1...3]").items == [20, 30]
    assert run(interp, "[10, 20, 30, 40][3..1]").items == []


def test_each_still_iterates_lazily(interp):
    result = run(interp, """
total = 0
(1..5).each { |n| total = total + n }
total
""")
    assert result == 15
