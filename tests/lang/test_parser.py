"""Parser unit tests over the mini-Ruby subset."""

import pytest

from repro.lang import ParseError, ast, parse_program


def first_stmt(source):
    return parse_program(source).body[0]


class TestLiterals:
    def test_array_literal(self):
        node = first_stmt("[1, 'two', :three]")
        assert isinstance(node, ast.ArrayLit)
        assert len(node.elements) == 3

    def test_hash_literal_modern_keys(self):
        node = first_stmt("{ name: 'Alice', age: 30 }")
        assert isinstance(node, ast.HashLit)
        keys = [k.name for k, _ in node.pairs]
        assert keys == ["name", "age"]

    def test_hash_literal_rockets(self):
        node = first_stmt("{ :action => prompt, 'k' => 1 }")
        assert isinstance(node, ast.HashLit)

    def test_nested_hash(self):
        node = first_stmt("{ apartments: { bedrooms: 2 } }")
        inner = node.pairs[0][1]
        assert isinstance(inner, ast.HashLit)


class TestCalls:
    def test_operator_desugars_to_call(self):
        node = first_stmt("1 + 2")
        assert isinstance(node, ast.MethodCall)
        assert node.name == "+"

    def test_index_desugars(self):
        node = first_stmt("x = 1\npage[:info]").body if False else parse_program("page[:info]").body[0]
        assert isinstance(node, ast.MethodCall)
        assert node.name == "[]"

    def test_chain_with_newline_dot(self):
        node = first_stmt("Post.includes(:topic)\n  .where('x')")
        assert isinstance(node, ast.MethodCall)
        assert node.name == "where"
        assert node.receiver.name == "includes"

    def test_command_call(self):
        node = first_stmt("has_many :emails")
        assert isinstance(node, ast.MethodCall)
        assert node.name == "has_many"
        assert isinstance(node.args[0], ast.SymLit)

    def test_command_call_with_kwargs(self):
        node = first_stmt('type "(String) -> %bool", typecheck: :model')
        assert node.name == "type"
        assert isinstance(node.args[0], ast.StrLit)
        assert isinstance(node.args[1], ast.HashLit)

    def test_local_shadows_call(self):
        program = parse_program("x = 1\nx")
        assert isinstance(program.body[1], ast.LocalVar)

    def test_unassigned_ident_is_self_call(self):
        node = first_stmt("page")
        assert isinstance(node, ast.MethodCall)
        assert node.receiver is None

    def test_block_brace(self):
        node = first_stmt("array.map { |v| v + 1 }")
        assert node.block is not None
        assert node.block.params[0].name == "v"

    def test_block_do_end(self):
        node = first_stmt("items.each do |x|\n  puts x\nend")
        assert node.block is not None

    def test_blockpass_symbol(self):
        node = first_stmt("xs.map(&:to_s)")
        assert node.args == []
        assert isinstance(node.block_arg, ast.SymLit)

    def test_setter_call(self):
        node = first_stmt("user.name = 'x'")
        assert isinstance(node, ast.AttrAssign)
        assert node.name == "name"

    def test_index_assign(self):
        node = first_stmt("a[0] = 'one'")
        assert isinstance(node, ast.IndexAssign)


class TestControlFlow:
    def test_postfix_if(self):
        node = first_stmt("return false if reserved?(name)")
        assert isinstance(node, ast.If)
        assert isinstance(node.then_body[0], ast.Return)

    def test_postfix_unless(self):
        node = first_stmt("save unless frozen?")
        assert isinstance(node, ast.If)
        assert node.then_body == []

    def test_if_elsif_else(self):
        node = first_stmt("if a\n 1\nelsif b\n 2\nelse\n 3\nend")
        assert isinstance(node, ast.If)
        assert isinstance(node.else_body[0], ast.If)

    def test_unless_statement(self):
        node = first_stmt("unless a\n 1\nend")
        assert isinstance(node, ast.If)
        assert node.then_body == []

    def test_while(self):
        node = first_stmt("while x < 3\n x = x + 1\nend")
        assert isinstance(node, ast.While)

    def test_case_when(self):
        node = first_stmt("case x\nwhen 1 then 'a'\nwhen 2, 3\n 'b'\nelse\n 'c'\nend")
        assert isinstance(node, ast.Case)
        assert len(node.whens) == 2
        assert len(node.whens[1].values) == 2

    def test_begin_rescue(self):
        node = first_stmt("begin\n f\nrescue NameError => e\n g\nend")
        assert isinstance(node, ast.BeginRescue)
        assert node.rescue_class == "NameError"
        assert node.rescue_var == "e"

    def test_and_or_keywords(self):
        node = first_stmt("a and b or c")
        assert isinstance(node, ast.OrOp)


class TestDefinitions:
    def test_method_def(self):
        node = first_stmt("def m(a, b = 1)\n a\nend")
        assert isinstance(node, ast.MethodDef)
        assert [p.name for p in node.params] == ["a", "b"]
        assert node.params[1].default is not None

    def test_self_method_def(self):
        node = first_stmt("def self.available?(name, email)\n true\nend")
        assert node.is_self
        assert node.name == "available?"

    def test_operator_def(self):
        node = first_stmt("def ==(other)\n true\nend")
        assert node.name == "=="

    def test_setter_def(self):
        node = first_stmt("def name=(v)\n @name = v\nend")
        assert node.name == "name="

    def test_class_def(self):
        node = first_stmt("class User < ActiveRecord::Base\nend")
        assert isinstance(node, ast.ClassDef)
        assert node.superclass == "ActiveRecord::Base"

    def test_splat_and_block_params(self):
        node = first_stmt("def m(*rest, &blk)\nend")
        assert node.params[0].is_splat
        assert node.params[1].is_block


class TestAssignment:
    def test_simple(self):
        node = first_stmt("x = 1")
        assert isinstance(node, ast.Assign)

    def test_op_assign(self):
        program = parse_program("x = 1\nx += 2")
        node = program.body[1]
        assert isinstance(node, ast.Assign)
        assert isinstance(node.value, ast.MethodCall)
        assert node.value.name == "+"

    def test_or_assign(self):
        node = first_stmt("@cache ||= {}")
        assert isinstance(node, ast.OpAssign)

    def test_ivar_assign(self):
        node = first_stmt("@name = 'x'")
        assert isinstance(node.target, ast.IVar)

    def test_multi_assign(self):
        node = first_stmt("a, b = 1, 2")
        assert isinstance(node, ast.MultiAssign)

    def test_string_interp(self):
        node = first_stmt('"hello #{name}!"')
        assert isinstance(node, ast.StrInterp)
        assert node.parts[0] == "hello "
        assert isinstance(node.parts[1], ast.MethodCall)

    def test_paper_figure_1a_parses(self):
        source = '''
class User < ActiveRecord::Base
  type "( String, String ) -> %bool", typecheck: :model
  def self.available?(name, email)
    return false if reserved?(name)
    return true if !User.exists?({ username: name })
    return User.joins( :emails ).exists?({ staged: true, username: name, emails: { email: email } })
  end
end
'''
        program = parse_program(source)
        klass = program.body[0]
        assert isinstance(klass, ast.ClassDef)
        assert isinstance(klass.body[0], ast.MethodCall)
        assert isinstance(klass.body[1], ast.MethodDef)

    def test_parse_error_reported(self):
        with pytest.raises(ParseError):
            parse_program("def end")
