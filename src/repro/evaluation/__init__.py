"""The evaluation harness: regenerates the paper's Table 1 and Table 2."""

from repro.evaluation.table1 import table1_rows, render_table1
from repro.evaluation.table2 import table2_rows, render_table2

__all__ = ["render_table1", "render_table2", "table1_rows", "table2_rows"]
