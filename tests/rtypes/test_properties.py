"""Property-based tests on the type lattice (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.rtypes import (
    ConstStringType,
    FiniteHashType,
    GenericType,
    NominalType,
    SingletonType,
    Sym,
    TupleType,
    default_hierarchy,
    join,
    make_union,
    parse_type,
    subtype,
)

HIER = default_hierarchy()

_NOMINALS = ["Integer", "Float", "Numeric", "String", "Symbol", "Object",
             "Boolean", "TrueClass", "Array", "Hash"]


def types(depth: int):
    leaf = st.one_of(
        st.sampled_from([NominalType(n) for n in _NOMINALS]),
        st.integers(-5, 5).map(SingletonType),
        st.sampled_from(["a", "b"]).map(lambda s: SingletonType(Sym(s))),
        st.sampled_from(["x", "sql"]).map(ConstStringType),
        st.just(SingletonType(None)),
        st.just(SingletonType(True)),
    )
    if depth == 0:
        return leaf
    sub = types(depth - 1)
    return st.one_of(
        leaf,
        st.lists(sub, min_size=1, max_size=3).map(TupleType),
        st.lists(sub, min_size=1, max_size=3).map(make_union),
        st.builds(lambda t: GenericType("Array", [t]), sub),
        st.builds(lambda k, v: GenericType("Hash", [k, v]), sub, sub),
        st.builds(lambda v: FiniteHashType({Sym("k"): v}), sub),
    )


@settings(max_examples=300, deadline=None)
@given(types(2))
def test_subtype_reflexive(t):
    assert subtype(t, t, HIER, record=False)


@settings(max_examples=200, deadline=None)
@given(types(1), types(1), types(1))
def test_subtype_transitive(a, b, c):
    if subtype(a, b, HIER, record=False) and subtype(b, c, HIER, record=False):
        assert subtype(a, c, HIER, record=False)


@settings(max_examples=200, deadline=None)
@given(types(1), types(1))
def test_join_is_upper_bound(a, b):
    j = join(a, b, HIER)
    assert subtype(a, j, HIER, record=False)
    assert subtype(b, j, HIER, record=False)


@settings(max_examples=200, deadline=None)
@given(types(1), types(1))
def test_join_commutative_up_to_subtyping(a, b):
    j1 = join(a, b, HIER)
    j2 = join(b, a, HIER)
    assert subtype(j1, j2, HIER, record=False)
    assert subtype(j2, j1, HIER, record=False)


@settings(max_examples=200, deadline=None)
@given(st.lists(types(1), min_size=1, max_size=4))
def test_union_members_below_union(ts):
    u = make_union(ts)
    for t in ts:
        assert subtype(t, u, HIER, record=False)


@settings(max_examples=300, deadline=None)
@given(types(2))
def test_render_parse_roundtrip_subtype(t):
    """Rendering a type and re-parsing it yields an equivalent type.

    (Singleton booleans/nil parse back to themselves; containers re-parse
    structurally.)"""
    text = t.to_s()
    reparsed = parse_type(text)
    assert subtype(t, reparsed, HIER, record=False)
    assert subtype(reparsed, t, HIER, record=False)


@settings(max_examples=200, deadline=None)
@given(types(1))
def test_nil_is_bottom(t):
    assert subtype(SingletonType(None), t, HIER, record=False)


@settings(max_examples=200, deadline=None)
@given(types(1))
def test_object_is_top(t):
    assert subtype(t, NominalType("Object"), HIER, record=False)
