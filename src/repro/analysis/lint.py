"""Flow-insensitive purity/termination lint for type-level code.

Mirrors the §4 termination checker (:mod:`repro.comp.termination`)
statically: instead of raising on the first violation while a comp
expression is being evaluated, it walks **every** comp expression and
helper body registered in a universe and reports all findings as
structured diagnostics with stable rule ids:

========  ========  =====================================================
rule id   severity  meaning
========  ========  =====================================================
COMP001   error     ``while``/``until`` loop in type-level code
COMP002   error     call to a method that may diverge (effect ``-``)
COMP003   error     block-dependent iterator with an impure block
COMP004   warning   call to an impure method from type-level code
COMP005   warning   helper recursion cycle (termination *assumed*, the
                    paper's recursion-free premise — see
                    ``termination.cycle_assumed`` in obs)
========  ========  =====================================================

The linter shares the dynamic checker's effect sources
(annotation ``terminates:``/``pure:`` keywords, then
:func:`repro.comp.effects.default_effect`), so a COMP001/002/003 finding
predicts exactly where ``TerminationError`` would be raised if checking
evaluated that comp — but covers unevaluated comps too.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.footprint import comp_codes_of
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse_program

SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, anchored to a source position when known."""

    rule: str
    severity: str
    message: str
    owner: str        # "Class#method" whose annotation/helper holds the code
    line: int = 0
    col: int = 0

    def render(self) -> str:
        at = f":{self.line}:{self.col}" if self.line else ""
        return f"{self.severity:<7} {self.rule} {self.owner}{at}: {self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "owner": self.owner,
            "line": self.line,
            "col": self.col,
        }


class EffectLinter:
    """Lints every comp expression and type-level helper of one universe."""

    def __init__(self, registry, interp=None):
        self.registry = registry
        self.interp = interp

    # ------------------------------------------------------------------
    def lint(self) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        seen_codes: set = set()
        for key in sorted(self.registry.method_annotations,
                          key=lambda k: (k.class_name, k.method_name, k.static)):
            for annotation in self.registry.method_annotations[key]:
                for code in sorted(comp_codes_of(annotation.signature)):
                    if code in seen_codes:
                        continue
                    seen_codes.add(code)
                    diagnostics.extend(self.lint_comp(code, str(key)))
        diagnostics.extend(self._lint_helpers())
        return diagnostics

    def lint_comp(self, code: str, owner: str) -> list[Diagnostic]:
        """Diagnostics for one comp expression's code."""
        try:
            program = parse_program(code)
        except Exception as exc:
            return [Diagnostic("COMP000", "error",
                               f"comp type does not parse: {exc}", owner)]
        findings: list[Diagnostic] = []
        for node in program.body:
            self._walk(node, owner, findings)
        return findings

    # ------------------------------------------------------------------
    def _lint_helpers(self) -> list[Diagnostic]:
        """Walk user-defined Object helpers for loops/effects plus
        recursion cycles (COMP005)."""
        findings: list[Diagnostic] = []
        helper_keys = sorted(
            (key for key in self.registry.defined_methods
             if key.class_name == "Object" and not key.static
             and key.method_name in self.registry.helper_methods),
            key=lambda k: k.method_name)
        call_graph: dict = {}
        for key in helper_keys:
            body = self.registry.defined_methods[key]
            owner = str(key)
            for stmt in body.body:
                self._walk(stmt, owner, findings)
            call_graph[key.method_name] = self._self_calls(body)
        findings.extend(self._cycle_findings(call_graph))
        return findings

    def _self_calls(self, body) -> set:
        from repro.analysis.footprint import walk

        names: set = set()
        for node in walk(body):
            if isinstance(node, ast.MethodCall) and node.receiver is None:
                names.add(node.name)
        return names

    def _cycle_findings(self, call_graph: dict) -> list[Diagnostic]:
        findings: list[Diagnostic] = []
        for name in sorted(call_graph):
            trail = self._find_cycle(name, call_graph)
            if trail is not None:
                findings.append(Diagnostic(
                    "COMP005", "warning",
                    "helper recursion cycle "
                    f"({' -> '.join(trail)}): termination is assumed, "
                    "not verified",
                    f"Object#{name}"))
        return findings

    @staticmethod
    def _find_cycle(start: str, call_graph: dict) -> list | None:
        stack = [(start, [start])]
        seen: set = set()
        while stack:
            current, trail = stack.pop()
            for callee in sorted(call_graph.get(current, ())):
                if callee == start:
                    return trail + [start]
                if callee in seen or callee not in call_graph:
                    continue
                seen.add(callee)
                stack.append((callee, trail + [callee]))
        return None

    # ------------------------------------------------------------------
    # the termination walk, reported instead of raised
    # ------------------------------------------------------------------
    def _walk(self, node, owner: str, findings: list) -> None:
        if node is None or isinstance(node, (str, int, float)):
            return
        if isinstance(node, ast.While):
            kind = "until" if node.is_until else "while"
            findings.append(Diagnostic(
                "COMP001", "error",
                f"type-level code may not contain loops ({kind})",
                owner, node.line, node.col))
            # still walk the body: report everything, not just the first
        if isinstance(node, ast.MethodCall):
            self._check_call(node, owner, findings)
        for child in self._children(node):
            self._walk(child, owner, findings)

    def _check_call(self, node: ast.MethodCall, owner: str,
                    findings: list) -> None:
        effect = self._effect_for(node)
        if effect.terminates == "-":
            findings.append(Diagnostic(
                "COMP002", "error",
                f"call to '{node.name}' may not terminate",
                owner, node.line, node.col))
        if effect.pure == "-":
            findings.append(Diagnostic(
                "COMP004", "warning",
                f"call to impure method '{node.name}'",
                owner, node.line, node.col))
        if effect.terminates == "blockdep" and node.block is not None:
            from repro.comp.termination import TerminationChecker

            checker = TerminationChecker(self.interp, self.registry)
            if not checker.is_pure_block(node.block):
                findings.append(Diagnostic(
                    "COMP003", "error",
                    f"iterator '{node.name}' takes an impure block",
                    owner, node.line, node.col))

    def _effect_for(self, node: ast.MethodCall):
        """Same best-effort lookup as the dynamic termination checker —
        shared so lint findings predict its errors."""
        from repro.comp.termination import TerminationChecker

        checker = TerminationChecker(self.interp, self.registry)
        return checker._effect_for(node)

    @staticmethod
    def _children(node):
        from repro.analysis.footprint import _children

        return _children(node)


def lint_universe(rdl) -> list[Diagnostic]:
    """All effect-lint diagnostics for one CompRDL universe."""
    return EffectLinter(rdl.registry, rdl.interp).lint()
