"""Pluggable storage backends for :class:`repro.db.schema.Database`.

The façade keeps the checker-visible semantics (generation counter, schema
journal, read/change listeners, id assignment); a :class:`StorageBackend`
keeps the actual schemas and rows — in dicts (:class:`MemoryBackend`) or in
a real ``sqlite3`` engine introspected via ``PRAGMA table_info``
(:class:`SqliteBackend`).
"""

from repro.db.backends.base import (
    BACKEND_ENV,
    StorageBackend,
    UnknownBackendError,
    backend_for_name,
    default_backend_name,
)
from repro.db.backends.memory import MemoryBackend
from repro.db.backends.sqlite import SqliteBackend, kind_from_declared

__all__ = [
    "BACKEND_ENV",
    "MemoryBackend",
    "SqliteBackend",
    "StorageBackend",
    "UnknownBackendError",
    "backend_for_name",
    "default_backend_name",
    "kind_from_declared",
]
