"""Value kinds that singleton types can range over.

Singleton types carry an underlying value.  Most values are plain Python
scalars (``int``, ``float``, ``bool``, ``None``), but two kinds need their
own wrappers so that the type layer does not depend on the interpreter's
object model:

* :class:`Sym` — a Ruby symbol such as ``:emails``;
* :class:`ClassRef` — a reference to a class used as a value, e.g. the
  receiver of ``User.exists?`` has the singleton type of the ``User`` class.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Sym:
    """An interned Ruby symbol (``:name``)."""

    name: str

    def __str__(self) -> str:
        return f":{self.name}"

    def __repr__(self) -> str:
        return f"Sym({self.name!r})"


@dataclass(frozen=True, slots=True)
class ClassRef:
    """A class used as a first-class value (e.g. the ``User`` in ``User.joins``)."""

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"ClassRef({self.name!r})"


def singleton_base_class(value: object) -> str:
    """Return the name of the class that a singleton value belongs to.

    This mirrors Ruby's ``value.class``: ``1`` is an ``Integer``, ``:foo``
    a ``Symbol``, ``true`` a ``TrueClass`` and so on.
    """
    if value is None:
        return "NilClass"
    if value is True:
        return "TrueClass"
    if value is False:
        return "FalseClass"
    if isinstance(value, Sym):
        return "Symbol"
    if isinstance(value, ClassRef):
        return "Class"
    if isinstance(value, int):
        return "Integer"
    if isinstance(value, float):
        return "Float"
    if isinstance(value, str):
        return "String"
    raise TypeError(f"value {value!r} cannot be a singleton type")
