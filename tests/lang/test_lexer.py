"""Lexer unit tests."""

import pytest

from repro.lang import LexError, Lexer


def kinds(source):
    return [(t.kind, t.value) for t in Lexer(source).tokenize() if t.kind != "newline"][:-1]


class TestBasics:
    def test_integer_and_float(self):
        assert kinds("42 3.5") == [("int", 42), ("float", 3.5)]

    def test_underscore_numbers(self):
        assert kinds("1_000") == [("int", 1000)]

    def test_single_quoted_string(self):
        assert kinds("'hi'") == [("string", "hi")]

    def test_double_quoted_plain(self):
        assert kinds('"hi"') == [("string", "hi")]

    def test_escapes(self):
        assert kinds('"a\\nb"') == [("string", "a\nb")]

    def test_symbol(self):
        assert kinds(":emails") == [("symbol", "emails")]

    def test_symbol_with_suffix(self):
        assert kinds(":exists?") == [("symbol", "exists?")]

    def test_ivar_and_gvar(self):
        assert kinds("@name $db") == [("ivar", "@name"), ("gvar", "$db")]

    def test_keywords_vs_idents(self):
        assert kinds("def foo end") == [("kw", "def"), ("ident", "foo"), ("kw", "end")]

    def test_method_name_suffixes(self):
        assert kinds("empty? save!") == [("ident", "empty?"), ("ident", "save!")]

    def test_bang_not_eaten_by_neq(self):
        assert kinds("a != b") == [("ident", "a"), ("op", "!="), ("ident", "b")]

    def test_namespaced_const(self):
        assert kinds("ActiveRecord::Base") == [("const", "ActiveRecord::Base")]

    def test_comment_skipped(self):
        assert kinds("1 # comment\n2") == [("int", 1), ("int", 2)]

    def test_hashrocket_after_symbol(self):
        assert kinds(":a=>1") == [("symbol", "a"), ("op", "=>"), ("int", 1)]

    def test_operators(self):
        assert kinds("a <=> b") == [("ident", "a"), ("op", "<=>"), ("ident", "b")]

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            Lexer("'oops").tokenize()


class TestInterpolation:
    def test_plain_interp(self):
        tokens = kinds('"a#{x}b"')
        assert tokens[0][0] == "dstring"
        parts = tokens[0][1]
        assert parts == [("str", "a"), ("code", "x"), ("str", "b")]

    def test_nested_braces(self):
        tokens = kinds('"#{h[:k]}"')
        assert tokens[0][1] == [("code", "h[:k]")]
