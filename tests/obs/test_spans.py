"""Span recording and Chrome trace_event export.

Two contracts matter: an *enabled* run produces trace JSON whose nesting a
Chrome-trace consumer (Perfetto) can reconstruct from ``ts``/``dur``
containment, and a *disabled* run records nothing at all — no events, no
counters, no per-call allocation (``span()`` hands back one shared no-op).
"""

import json
import os
import threading

import pytest

from repro import obs
from repro.obs import spans as spans_mod
from repro.obs.spans import NULL_SPAN


def test_span_nesting_round_trips_to_chrome_json(tmp_path):
    obs.enable()
    with obs.span("outer", label="o") as outer:
        outer.set("k", 1)
        with obs.span("inner"):
            pass
        obs.event("tick", args={"n": 3})

    path = obs.export_chrome_trace(str(tmp_path / "t.json"),
                                   metrics={"m": 1})
    with open(path) as handle:
        doc = json.load(handle)  # must be *valid* JSON, not just a file

    assert doc["displayTimeUnit"] == "ms"
    assert doc["metrics"] == {"m": 1}
    by_name = {e["name"]: e for e in doc["traceEvents"]}
    assert set(by_name) == {"outer", "inner", "tick"}
    for name in ("outer", "inner"):
        complete = by_name[name]
        assert complete["ph"] == "X"
        assert complete["pid"] == os.getpid()
        assert complete["tid"] == threading.get_ident()
        assert complete["dur"] >= 0
    assert by_name["tick"]["ph"] == "i"
    assert by_name["tick"]["s"] == "p"
    assert by_name["tick"]["args"] == {"n": 3}
    # nesting survives as ts/dur containment per (pid, tid) — exactly how
    # Chrome/Perfetto rebuild the span tree (there are no parent links)
    outer_e, inner_e = by_name["outer"], by_name["inner"]
    assert outer_e["ts"] <= inner_e["ts"]
    assert inner_e["ts"] + inner_e["dur"] <= outer_e["ts"] + outer_e["dur"]
    assert outer_e["args"] == {"label": "o", "k": 1}


def test_exception_inside_span_records_error_and_propagates():
    obs.enable()
    with pytest.raises(ValueError):
        with obs.span("boom"):
            raise ValueError("x")
    [recorded] = obs.events()
    assert recorded["args"]["error"] == "ValueError"


def test_disabled_mode_emits_zero_events_and_no_allocations():
    assert not obs.enabled()
    # the no-op singleton: identical object every call, so the disabled
    # fast path allocates nothing per span
    assert obs.span("anything", label="x") is NULL_SPAN
    with obs.span("anything") as sp:
        sp.set("k", 1)
    obs.event("tick", args={"n": 1})
    assert obs.events() == []
    assert obs.buffered() == 0
    assert obs.counters() == {}


def test_traced_decorator_times_calls_only_while_enabled():
    @obs.traced("math.double")
    def double(x):
        """Twice x."""
        return 2 * x

    assert double(4) == 8  # disabled: plain call, no event
    assert obs.events() == []

    obs.enable()
    assert double(5) == 10
    [recorded] = obs.events()
    assert recorded["name"] == "math.double"
    assert double.__name__ == "double"
    assert double.__doc__ == "Twice x."


def test_mark_drain_absorb_window_the_buffer():
    obs.enable()
    with obs.span("before"):
        pass
    position = obs.mark()
    with obs.span("after"):
        pass
    # drain(mark) takes only the window — an in-process worker call must
    # not steal the caller's earlier spans
    taken = obs.drain(position)
    assert [e["name"] for e in taken] == ["after"]
    assert [e["name"] for e in obs.events()] == ["before"]
    obs.absorb(taken)
    assert [e["name"] for e in obs.events()] == ["before", "after"]
    # absorbing while disabled is a no-op (a worker that kept tracing
    # cannot re-fill a buffer the engine turned off)
    obs.disable()
    obs.absorb([{"name": "ghost"}])
    assert obs.buffered() == 2


def test_buffer_cap_drops_and_counts(monkeypatch):
    monkeypatch.setattr(spans_mod, "_MAX_EVENTS", 2)
    obs.enable()
    for index in range(4):
        with obs.span(f"s{index}"):
            pass
    assert obs.buffered() == 2
    assert obs.counters()["obs.events_dropped"] == 2


def test_render_summary_aggregates_phases_and_counters():
    obs.enable()
    for _ in range(3):
        with obs.span("phase.a"):
            pass
    obs.bump("my.counter", 7)
    text = obs.render_summary()
    assert "phase.a" in text
    assert "my.counter: 7" in text
